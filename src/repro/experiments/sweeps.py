"""Parameter sweeps over the paper's scenarios, parallelisable point-wise.

Two sweeps the benchmark suite reports:

* **client load vs. index-drop severity** — Figure 4's violation is
  load-dependent: the degraded BestSeller plan always gets slower, but the
  application-level SLA only breaks once the extra read-ahead I/O meets
  enough concurrent traffic.  The sweep locates the crossover.
* **pool size vs. co-location feasibility** — Table 2's conclusion
  ("SearchItemsByRegion cannot be co-located with TPC-W in a shared
  8192-page pool") is a function of the pool size.  The sweep runs the
  quota feasibility check across pool sizes and finds the crossover.

Each sweep point is an independent simulation (or feasibility check), so
both drivers accept ``workers`` and shard their points across a process
pool via :mod:`repro.experiments.parallel`; results come back in
submission order, byte-identical to a serial run.
"""

from __future__ import annotations

from ..core.mrc import MissRatioCurve
from ..core.quota import find_quotas
from .index_drop import IndexDropConfig, run_index_drop
from .mrc_curves import trace_of_class
from .parallel import SweepTask, run_sweep

__all__ = [
    "CLIENT_LOADS",
    "POOL_SIZES",
    "run_client_load_sweep",
    "run_pool_size_sweep",
]

CLIENT_LOADS = (20, 40, 60, 80)
POOL_SIZES = (4096, 8192, 12288, 16384, 24576, 32768)


def _client_load_point(
    clients: int,
    warmup_intervals: int,
    violation_intervals: int,
    recovery_intervals: int,
) -> tuple[int, float, float, float, bool]:
    """One sweep point: the index-drop scenario at one client population."""
    result = run_index_drop(
        IndexDropConfig(
            clients=clients,
            warmup_intervals=warmup_intervals,
            violation_intervals=violation_intervals,
            recovery_intervals=recovery_intervals,
        )
    )
    return (
        clients,
        result.latency_before,
        result.latency_violation,
        result.latency_after,
        bool(result.latency_violation > 1.0),
    )


def run_client_load_sweep(
    loads: tuple[int, ...] = CLIENT_LOADS,
    workers: int | None = None,
    warmup_intervals: int = 10,
    violation_intervals: int = 5,
    recovery_intervals: int = 4,
) -> list[tuple[int, float, float, float, bool]]:
    """Index-drop severity at each client population in ``loads``.

    Rows are ``(clients, latency_before, worst_violated_latency,
    latency_after_retuning, sla_incident)``, in the order of ``loads``.
    """
    tasks = [
        SweepTask(
            name=f"sweep.client_load/{clients}",
            fn=_client_load_point,
            args=(
                clients,
                warmup_intervals,
                violation_intervals,
                recovery_intervals,
            ),
        )
        for clients in loads
    ]
    return run_sweep(tasks, workers=workers)


def _build_colocation_curves() -> tuple[MissRatioCurve, dict[str, MissRatioCurve]]:
    """The SIBR curve and every TPC-W class curve, from seeded traces."""
    from ..workloads.rubis import SEARCH_ITEMS_BY_REGION, build_rubis
    from ..workloads.tpcw import build_tpcw

    tpcw = build_tpcw(seed=7)
    rubis = build_rubis(seed=11)
    sibr_trace = trace_of_class(
        rubis.class_named(SEARCH_ITEMS_BY_REGION), executions=150
    )
    sibr_curve = MissRatioCurve.from_trace(sibr_trace)
    tpcw_curves = {}
    for query_class in tpcw.classes():
        executions = 250 if query_class.name != "best_seller" else 120
        trace = trace_of_class(query_class, executions=executions)
        tpcw_curves[query_class.name] = MissRatioCurve.from_trace(trace)
    return sibr_curve, tpcw_curves


def _pool_size_point(
    pool: int,
    sibr_curve: MissRatioCurve,
    tpcw_curves: dict[str, MissRatioCurve],
) -> tuple[int, int, int, bool, int]:
    """One sweep point: quota feasibility at one pool size."""
    problem = {"sibr": sibr_curve.parameters(pool)}
    others = {
        name: curve.parameters(pool) for name, curve in tpcw_curves.items()
    }
    plan = find_quotas(problem, others, pool, min_quota=256)
    return (
        pool,
        problem["sibr"].acceptable_memory,
        sum(p.acceptable_memory for p in others.values()),
        plan.feasible,
        plan.quotas.get("sibr", 0),
    )


def run_pool_size_sweep(
    pools: tuple[int, ...] = POOL_SIZES,
    workers: int | None = None,
) -> list[tuple[int, int, int, bool, int]]:
    """Co-location feasibility at each pool size in ``pools``.

    The class curves are built once (they do not depend on the pool size)
    and shipped to every worker; each point only extracts parameters and
    runs the quota search.  Rows are ``(pool, sibr_acceptable,
    tpcw_acceptable_sum, quota_feasible, sibr_quota)``.
    """
    sibr_curve, tpcw_curves = _build_colocation_curves()
    tasks = [
        SweepTask(
            name=f"sweep.pool_size/{pool}",
            fn=_pool_size_point,
            args=(pool, sibr_curve, tpcw_curves),
        )
        for pool in pools
    ]
    return run_sweep(tasks, workers=workers)
