"""Ablation studies for the design choices DESIGN.md calls out.

These go beyond the paper's tables: each ablation isolates one design
decision of the selective-retuning pipeline and quantifies what it buys.

* **Quota vs. reschedule** (paper §3.3.2's trade-off): both actions restore
  the SLA after the index drop, but the quota does it on a single machine
  while rescheduling consumes a second replica.
* **Fine- vs. coarse-grained reaction**: the coarse-only baseline
  (provision/isolate whole applications) needs more machines to absorb the
  same memory-contention incident.
* **Outlier-guided vs. top-k candidate selection**: disabling the IQR
  detector and always assessing the top-k heavyweight classes reaches the
  same action but recomputes more MRCs (the detector's job is to focus the
  expensive analysis).
* **MRC window sensitivity**: how the degraded BestSeller's quota estimate
  varies with the recent-access window length.

Every ablation compares *independent* simulation runs, so each driver
accepts ``workers`` and shards its policy runs across a process pool via
:mod:`repro.experiments.parallel`; results are merged in submission order,
so a parallel run returns exactly what the serial run returns.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..cluster.server import ServerSpec
from ..core.controller import ControllerConfig
from ..core.diagnosis import DiagnosisConfig
from ..core.mrc import MissRatioCurve
from ..workloads.rubis import build_rubis
from ..workloads.tpcw import BEST_SELLER, O_DATE_INDEX, build_tpcw
from .index_drop import CPU_SCALE, EXPERIMENT_COST_MODEL, scale_cpu_costs
from .parallel import SweepTask, run_sweep
from .runner import ClusterHarness

__all__ = [
    "PolicyOutcome",
    "run_quota_vs_reschedule",
    "run_coarse_vs_fine",
    "run_topk_vs_outliers",
    "run_routing_policies",
    "run_mrc_window_sensitivity",
]


@dataclass
class PolicyOutcome:
    """What one policy cost and achieved in a scenario."""

    policy: str
    recovered_latency: float = 0.0
    servers_used: int = 0
    replicas_used: int = 0
    mrc_recomputations: int = 0
    details: dict = field(default_factory=dict)


def _index_drop_harness(clients=60, fine_grained=True, diagnosis=None):
    workload = build_tpcw(seed=7)
    scale_cpu_costs(workload, CPU_SCALE)
    harness = ClusterHarness.single_app(
        workload,
        servers=3,
        clients=clients,
        cost_model=EXPERIMENT_COST_MODEL,
        config=ControllerConfig(
            fallback_patience=4,
            fine_grained=fine_grained,
            diagnosis=diagnosis if diagnosis is not None else DiagnosisConfig(),
        ),
    )
    return workload, harness


def _servers_used(harness, app) -> int:
    return len({r.host.name for r in harness.replicas_of(app)})


def _victim_latency(harness) -> float:
    """Mean latency over the non-BestSeller (victim) classes' last interval."""
    from ..core.metrics import Metric

    total_latency = 0.0
    total_queries = 0.0
    for replica in harness.replicas_of("tpcw"):
        analyzer = harness.controller.analyzer_of(replica)
        for key, vector in analyzer.current_vectors("tpcw").items():
            if key.endswith(BEST_SELLER):
                continue
            queries = vector.get(Metric.THROUGHPUT)
            total_latency += queries * vector.get(Metric.LATENCY)
            total_queries += queries
    return total_latency / total_queries if total_queries else 0.0


def _run_index_drop_policy(policy: str, **kwargs) -> PolicyOutcome:
    workload, harness = _index_drop_harness(**kwargs)
    harness.run(intervals=12)
    workload.catalog.drop(O_DATE_INDEX)
    harness.run(intervals=8)
    recovery = harness.run(intervals=6)
    analyzer = harness.controller.analyzer_of(harness.replicas_of("tpcw")[0])
    return PolicyOutcome(
        policy=policy,
        recovered_latency=recovery.steady_mean_latency("tpcw"),
        servers_used=_servers_used(harness, "tpcw"),
        replicas_used=len(harness.scheduler("tpcw").replicas),
        mrc_recomputations=analyzer.mrc.recomputations,
        details={"victim_latency": _victim_latency(harness)},
    )


def _apply_quota(workload, harness):
    from .buffer_partitioning import derive_quota, BufferPartitioningConfig

    quota = derive_quota(BufferPartitioningConfig(seed=7))
    replica = harness.replicas_of("tpcw")[0]
    replica.engine.set_quota(f"tpcw/{BEST_SELLER}", quota)


def _apply_reschedule(workload, harness):
    scheduler = harness.scheduler("tpcw")
    replica = harness.resource_manager.allocate_replica(
        scheduler, harness.clock.now
    )
    harness.controller.track_replica(replica)
    scheduler.move_class(f"tpcw/{BEST_SELLER}", replica.name)


_FROZEN_ACTIONS = {"quota": _apply_quota, "reschedule": _apply_reschedule}


def _frozen_policy(policy_name: str) -> PolicyOutcome:
    """Index-drop scenario with exactly one manual action applied."""
    act = _FROZEN_ACTIONS[policy_name]
    workload, harness = _index_drop_harness()
    harness.run(intervals=12)
    workload.catalog.drop(O_DATE_INDEX)
    harness.run(intervals=2)  # let the violation build
    act(workload, harness)
    # Freeze the controller so only the chosen action is in play.
    harness.controller.config = ControllerConfig(
        startup_grace_intervals=10_000
    )
    harness.run(intervals=8)
    return PolicyOutcome(
        policy=policy_name,
        recovered_latency=_victim_latency(harness),
        servers_used=_servers_used(harness, "tpcw"),
        replicas_used=len(harness.scheduler("tpcw").replicas),
    )


def run_quota_vs_reschedule(workers: int | None = None) -> list[PolicyOutcome]:
    """Quota enforcement vs. forced rescheduling, immediately after the drop.

    Both fine-grained actions restore the *victims* (every class except the
    degraded BestSeller); the trade-off the paper discusses (§3.3.2) is the
    machinery each consumes: the quota keeps BestSeller co-located on one
    replica, while rescheduling pays for a second replica up front.  Any
    later coarse escalation is disabled so the two actions are compared in
    isolation.
    """
    return run_sweep(
        [
            SweepTask(f"ablation.frozen/{policy}", _frozen_policy, (policy,))
            for policy in ("quota", "reschedule")
        ],
        workers=workers,
    )


def _coarse_fine_policy(fine: bool, policy: str) -> PolicyOutcome:
    """One run of the memory-contention scenario under one granularity."""
    tpcw = build_tpcw(seed=7)
    rubis = build_rubis(seed=11)
    scale_cpu_costs(tpcw, CPU_SCALE)
    scale_cpu_costs(rubis, CPU_SCALE)
    harness = ClusterHarness.shared_engine(
        [tpcw, rubis],
        spare_servers=3,
        clients={"tpcw": 60, "rubis": 0},
        cost_model=EXPERIMENT_COST_MODEL,
        config=ControllerConfig(fallback_patience=4, fine_grained=fine),
        server_spec=ServerSpec(cores=16),
    )
    harness.run(intervals=10)
    from ..workloads.load import ConstantLoad

    harness.drivers["rubis"].load = ConstantLoad(300)
    harness.run(intervals=10)
    recovery = harness.run(intervals=6)
    servers = {
        r.host.name
        for app in ("tpcw", "rubis")
        for r in harness.replicas_of(app)
    }
    return PolicyOutcome(
        policy=policy,
        recovered_latency=recovery.steady_mean_latency("tpcw"),
        servers_used=len(servers),
        replicas_used=sum(
            len(harness.scheduler(app).replicas) for app in ("tpcw", "rubis")
        ),
    )


def run_coarse_vs_fine(workers: int | None = None) -> list[PolicyOutcome]:
    """Fine-grained pipeline vs. the coarse-only provisioning baseline on
    the shared-pool memory-contention scenario."""
    return run_sweep(
        [
            SweepTask(
                f"ablation.granularity/{policy}",
                _coarse_fine_policy,
                (fine, policy),
            )
            for fine, policy in ((True, "fine-grained"), (False, "coarse-only"))
        ],
        workers=workers,
    )


def run_topk_vs_outliers(workers: int | None = None) -> list[PolicyOutcome]:
    """Outlier-guided candidate selection vs. always-top-k."""
    return run_sweep(
        [
            SweepTask(
                "ablation.candidates/outlier-guided",
                _run_index_drop_policy,
                ("outlier-guided",),
                {"diagnosis": DiagnosisConfig(use_outlier_detection=True)},
            ),
            SweepTask(
                "ablation.candidates/top-k-only",
                _run_index_drop_policy,
                ("top-k-only",),
                {"diagnosis": DiagnosisConfig(use_outlier_detection=False, top_k=6)},
            ),
        ],
        workers=workers,
    )


def _routing_policy(policy: str, clients: int) -> PolicyOutcome:
    """One run of the noisy-neighbour scenario under one read policy."""
    workload = build_tpcw(seed=7)
    scale_cpu_costs(workload, CPU_SCALE)
    from ..cluster.replica import Replica
    from ..cluster.resource_manager import ResourceManager
    from ..cluster.scheduler import Scheduler
    from ..cluster.server import PhysicalServer
    from ..core.controller import ClusterController

    manager = ResourceManager(cost_model=EXPERIMENT_COST_MODEL)
    controller = ClusterController(
        manager, config=ControllerConfig(startup_grace_intervals=10_000)
    )
    harness = ClusterHarness(controller)
    scheduler = Scheduler(
        workload.app,
        read_policy=policy,
        interval_length=controller.config.interval_length,
    )
    controller.add_scheduler(scheduler)
    quiet = PhysicalServer("quiet", ServerSpec(cores=4))
    noisy = PhysicalServer("noisy", ServerSpec(cores=4))
    manager.add_server(quiet)
    manager.add_server(noisy)
    for name, server in (("tpcw-r1", quiet), ("tpcw-r2", noisy)):
        replica = Replica.create(name, workload.app, server,
                                 cost_model=EXPERIMENT_COST_MODEL)
        scheduler.add_replica(replica)
        controller.track_replica(replica)
    harness.attach_workload(workload, clients)

    def neighbour_load(h, server=noisy):
        # A co-located tenant burning most of the noisy host's CPU and
        # a good share of its I/O channel, every interval.
        server.note_demand(cpu_seconds=30.0, io_pages=25_000.0)

    for index in range(12):
        harness.at_interval(index, neighbour_load)
    result = harness.run(intervals=12)
    return PolicyOutcome(
        policy=policy,
        recovered_latency=result.steady_mean_latency(workload.app),
        servers_used=2,
        replicas_used=2,
        details={"quiet_share": _read_share(scheduler, "tpcw-r1")},
    )


def run_routing_policies(
    clients: int = 40, workers: int | None = None
) -> list[PolicyOutcome]:
    """Round-robin vs. load-aware read routing with a noisy neighbour.

    Two TPC-W replicas; the second replica's host also carries a steady
    background load (another tenant).  Round-robin keeps sending half the
    reads to the slow host; the least-loaded policy drains toward the quiet
    one.
    """
    return run_sweep(
        [
            SweepTask(
                f"ablation.routing/{policy}", _routing_policy, (policy, clients)
            )
            for policy in ("round_robin", "least_loaded")
        ],
        workers=workers,
    )


def _read_share(scheduler, replica_name: str) -> float:
    executions = {
        name: scheduler.replicas[name].engine.executor.executions
        for name in scheduler.replica_names()
    }
    total = sum(executions.values())
    return executions[replica_name] / total if total else 0.0


def _window_estimate(length: int, trace: np.ndarray) -> int:
    """Acceptable-memory estimate over the first ``length`` accesses."""
    curve = MissRatioCurve.from_trace(trace[:length])
    return curve.parameters(8192).acceptable_memory


def run_mrc_window_sensitivity(
    window_lengths: tuple[int, ...] = (2000, 5000, 15000, 40000, 100000),
    workers: int | None = None,
) -> dict[int, int]:
    """BestSeller's acceptable-memory estimate vs. analysed trace length.

    Short windows are cold-miss dominated and underestimate the memory
    need — the reason the analyzer refines initial MRCs as windows fill
    and the diagnosis demands a minimum tail before judging a class.
    """
    workload = build_tpcw(seed=7)
    best_seller = workload.class_named(BEST_SELLER)
    pages: list[int] = []
    while len(pages) < max(window_lengths):
        pages.extend(best_seller.execute_pages().demand)
    trace = np.asarray(pages, dtype=np.int64)
    estimates = run_sweep(
        [
            SweepTask(
                f"ablation.window/{length}", _window_estimate, (length, trace)
            )
            for length in window_lengths
        ],
        workers=workers,
    )
    return dict(zip(window_lengths, estimates))
