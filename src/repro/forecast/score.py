"""Scoring the forecaster: records, outcomes, and validator error.

Three questions decide whether predictive enforcement earns its keep:

* **Did the alarms correspond to reality?**  Every per-interval decision
  becomes a :class:`ForecastRecord`; once the prediction's window closes,
  the act-ahead policy resolves it to ``hit`` (a real violation arrived
  in-window) or ``false_alarm`` (window closed clean — possibly because
  the action worked; the reactive baseline settles which).
* **Did acting ahead avoid violated intervals?**  :func:`score_forecasts`
  compares the SLA series of a reactive and a predictive run of the same
  scenario: ``intervals_avoided`` is the paper-level win.
* **Were the predicted miss ratios honest?**  The act-ahead plan's
  predictions are replayed through the existing what-if validator
  (:func:`repro.planner.validate_plan`); :func:`validation_summary`
  condenses that into the artefact's predicted-vs-simulated error.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = [
    "ForecastRecord",
    "ForecastScore",
    "score_forecasts",
    "validation_summary",
]


@dataclass(frozen=True)
class ForecastRecord:
    """One per-app, per-interval forecast decision and its fate."""

    interval: int
    app: str
    horizon: int
    predicted_latency: float
    threshold: float
    confidence: float
    decision: str
    """The policy's reason: ``act`` | ``no-violation`` | ``low-confidence``
    | ``hysteresis`` | ``cooldown`` | ``budget-exhausted``."""
    acted: bool
    seed: int = 0
    outcome: str = "pending"
    """``pending`` until the horizon window closes, then ``hit`` or
    ``false_alarm`` (act-ahead records only; the rest stay ``none``)."""


def resolve_records(
    records: list[ForecastRecord], app: str, interval: int, outcome: str
) -> list[ForecastRecord]:
    """Stamp the oldest pending act-ahead record of ``app`` fired before
    ``interval`` with ``outcome``; returns the updated list."""
    for index, record in enumerate(records):
        if (
            record.app == app
            and record.acted
            and record.outcome == "pending"
            and record.interval < interval
        ):
            records[index] = replace(record, outcome=outcome)
            break
    return records


@dataclass
class ForecastScore:
    """Reactive-vs-predictive scoreboard for one scenario."""

    predictions: int = 0
    predicted_violations: int = 0
    acted: int = 0
    hits: int = 0
    false_alarms: int = 0
    low_confidence: int = 0
    violations_reactive: int = 0
    violations_predictive: int = 0

    @property
    def intervals_avoided(self) -> int:
        """SLA-violation intervals the predictive run did not suffer."""
        return self.violations_reactive - self.violations_predictive


def score_forecasts(
    records: list[ForecastRecord],
    reactive_sla: list[bool],
    predictive_sla: list[bool],
) -> ForecastScore:
    """Condense one scenario's records + both runs' SLA series."""
    score = ForecastScore(
        violations_reactive=sum(1 for met in reactive_sla if not met),
        violations_predictive=sum(1 for met in predictive_sla if not met),
    )
    for record in records:
        score.predictions += 1
        if record.decision != "no-violation":
            score.predicted_violations += 1
        if record.decision == "low-confidence":
            score.low_confidence += 1
        if record.acted:
            score.acted += 1
            if record.outcome == "hit":
                score.hits += 1
            elif record.outcome == "false_alarm":
                score.false_alarms += 1
    return score


def validation_summary(validation) -> dict:
    """JSON-able condensate of a :class:`~repro.planner.PlanValidation`:
    the predicted-vs-simulated miss-ratio error of an act-ahead plan."""
    return {
        "ok": validation.ok,
        "checks": len(validation.checks),
        "max_relative_error": round(validation.max_relative_error, 6),
        "classes": [
            {
                "context": check.context_key,
                "predicted_miss_ratio": round(
                    check.predicted_miss_ratio, 6
                ),
                "simulated_miss_ratio": round(
                    check.simulated_miss_ratio, 6
                ),
                "relative_error": round(check.relative_error, 6),
            }
            for check in validation.checks
        ],
    }
