"""Act-ahead policy: when a forecast is allowed to fire the planner.

A forecast of trouble is cheap; a planner action is not (every pool
rebuild restarts cold).  The policy therefore gates predicted violations
through four filters before the controller may act ahead of time:

* **confidence** — a cold or erratic forecaster (confidence below
  ``min_confidence``) never fires; the app simply stays on the reactive
  path, which is always still armed behind the forecast;
* **hysteresis** — ``confirm_intervals`` *consecutive* predicted
  violations are required, so a single noisy extrapolation cannot thrash
  the cluster;
* **cooldown** — after acting, the policy sits out ``cooldown_intervals``
  (mirroring the controller's action grace) so the action's effect is
  measurable before the next one;
* **false-positive budget** — every act-ahead spends one token; a real
  violation arriving within the prediction's horizon *refunds* it (the
  alarm was justified), while a prediction whose window closes violation
  free forfeits the token.  An exhausted budget suspends predictive
  action entirely — the controller degrades to purely reactive — until a
  genuine violation proves the forecaster right again.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["PolicyConfig", "Decision", "ActAheadPolicy"]


@dataclass(frozen=True)
class PolicyConfig:
    """Act-ahead tunables."""

    confirm_intervals: int = 1
    """Consecutive predicted violations required before acting."""
    min_confidence: float = 0.4
    """Forecast confidence below which the policy defers to the reactive
    path."""
    margin: float = 1.0
    """Predicted latency must exceed ``margin * sla_latency`` to count as
    a predicted violation (below 1.0 = act earlier, above = later)."""
    false_positive_budget: int = 3
    """Act-ahead tokens; refunded when the predicted violation was real."""
    cooldown_intervals: int = 2
    """Intervals to sit out after an act-ahead action."""

    def __post_init__(self) -> None:
        if self.confirm_intervals < 1:
            raise ValueError("confirm intervals must be at least 1")
        if not 0 <= self.min_confidence <= 1:
            raise ValueError("min confidence must be in [0, 1]")
        if self.margin <= 0:
            raise ValueError("margin must be positive")
        if self.false_positive_budget < 1:
            raise ValueError("false-positive budget must be at least 1")
        if self.cooldown_intervals < 0:
            raise ValueError("cooldown must be non-negative")


@dataclass(frozen=True)
class Decision:
    """One per-app, per-interval verdict of the act-ahead policy."""

    app: str
    interval: int
    act: bool
    reason: str
    """``act`` | ``no-violation`` | ``low-confidence`` | ``hysteresis`` |
    ``cooldown`` | ``budget-exhausted``"""
    predicted_latency: float = 0.0
    threshold: float = 0.0
    confidence: float = 0.0


@dataclass
class _AppState:
    streak: int = 0
    last_act: int | None = None
    pending: list[tuple[int, int]] = field(default_factory=list)
    """(fired_interval, resolve_deadline) of unresolved act-aheads."""
    hits: int = 0
    false_positives: int = 0


class ActAheadPolicy:
    """Stateful act-ahead gating, one :class:`_AppState` per application."""

    def __init__(self, config: PolicyConfig | None = None) -> None:
        self.config = config if config is not None else PolicyConfig()
        self.budget = self.config.false_positive_budget
        self._apps: dict[str, _AppState] = {}

    def _state(self, app: str) -> _AppState:
        return self._apps.setdefault(app, _AppState())

    # ------------------------------------------------------------------ #
    # Deciding                                                           #
    # ------------------------------------------------------------------ #

    def decide(
        self,
        app: str,
        interval: int,
        horizon: int,
        predicted_latency: float,
        sla_latency: float,
        confidence: float,
    ) -> Decision:
        """Gate one forecast; ``act=True`` means fire the planner now."""
        state = self._state(app)
        threshold = self.config.margin * sla_latency
        base = dict(
            app=app,
            interval=interval,
            predicted_latency=predicted_latency,
            threshold=threshold,
            confidence=confidence,
        )
        if predicted_latency <= threshold:
            state.streak = 0
            return Decision(act=False, reason="no-violation", **base)
        if confidence < self.config.min_confidence:
            # A cold forecaster neither acts nor accumulates hysteresis
            # credit: confidence must be earned first.
            state.streak = 0
            return Decision(act=False, reason="low-confidence", **base)
        state.streak += 1
        if state.streak < self.config.confirm_intervals:
            return Decision(act=False, reason="hysteresis", **base)
        if (
            state.last_act is not None
            and interval - state.last_act <= self.config.cooldown_intervals
        ):
            return Decision(act=False, reason="cooldown", **base)
        if self.budget <= 0:
            return Decision(act=False, reason="budget-exhausted", **base)
        self.budget -= 1
        state.last_act = interval
        state.pending.append((interval, interval + horizon))
        return Decision(act=True, reason="act", **base)

    def refund(self, app: str, interval: int) -> None:
        """Return the token of an act that applied nothing (empty plan):
        no cluster change happened, so nothing was risked."""
        state = self._state(app)
        state.pending = [
            (fired, deadline)
            for fired, deadline in state.pending
            if fired != interval
        ]
        if state.last_act == interval:
            state.last_act = None
        self._credit()

    # ------------------------------------------------------------------ #
    # Resolving                                                          #
    # ------------------------------------------------------------------ #

    def resolve(self, app: str, interval: int, violated: bool) -> list[str]:
        """Feed the actual SLA outcome of ``interval``; returns the
        outcome (``hit``/``false_alarm``) of every act-ahead resolved by
        it, in firing order."""
        state = self._state(app)
        outcomes: list[str] = []
        remaining: list[tuple[int, int]] = []
        for fired, deadline in state.pending:
            if violated and fired < interval <= deadline:
                # The predicted violation materialised in-window (despite
                # the action, or before it warmed up): the alarm was
                # justified — refund the token.
                state.hits += 1
                self._credit()
                outcomes.append("hit")
            elif interval >= deadline:
                # Window closed violation-free.  Either a false alarm or a
                # successfully averted violation; the policy cannot tell
                # them apart online, so it forfeits the token — the eval's
                # reactive-baseline comparison settles which it was.
                state.false_positives += 1
                outcomes.append("false_alarm")
            else:
                remaining.append((fired, deadline))
        state.pending = remaining
        return outcomes

    def _credit(self) -> None:
        self.budget = min(
            self.budget + 1, self.config.false_positive_budget
        )

    # ------------------------------------------------------------------ #
    # Reporting                                                          #
    # ------------------------------------------------------------------ #

    def stats(self) -> dict:
        return {
            "budget_remaining": self.budget,
            "hits": sum(s.hits for s in self._apps.values()),
            "false_positives": sum(
                s.false_positives for s in self._apps.values()
            ),
            "pending": sum(len(s.pending) for s in self._apps.values()),
        }
