"""Assemble a horizon-``h`` predicted :class:`ClusterSnapshot`.

The planner plans against pure data, so predicting the future is a matter
of projecting that data forward: take the snapshot :func:`build_snapshot`
assembled from the live cluster and replace every forecasted quantity with
its horizon-``h`` extrapolation — per-class page pressure (the weight the
planner's score puts on each class's miss-ratio excess) and per-app mean
latency / throughput / SLA standing.  Everything else (placements, quotas,
curves, topology) is carried over unchanged: the forecast predicts *load*,
not *structure*.

Horizon zero is the identity: ``predicted_snapshot(s, ..., horizon=0)``
returns ``s`` itself, byte for byte — the property suite pins this, and it
is what makes the predictive path degrade gracefully into the reactive one.
"""

from __future__ import annotations

from dataclasses import replace

from ..planner.model import AppState, ClassState, ClusterSnapshot
from .model import AppForecast, ClassForecast

__all__ = ["predicted_snapshot"]


def _project_class(state: ClassState, forecast: ClassForecast) -> ClassState:
    pressure = max(forecast.pressure, 0.0)
    if pressure == state.pressure:
        return state
    return replace(state, pressure=pressure)


def _project_app(state: AppState, forecast: AppForecast) -> AppState:
    latency = max(forecast.mean_latency, 0.0)
    violating = latency > state.sla_latency
    streak = state.violation_streak
    if violating:
        # The projected standing the planner would see had it waited: at
        # least one more violated interval on top of any current streak.
        streak = max(streak + forecast.horizon, 1)
    return replace(
        state,
        mean_latency=latency,
        throughput=max(forecast.throughput, 0.0),
        sla_met=not violating,
        violation_streak=streak if violating else state.violation_streak,
    )


def predicted_snapshot(
    snapshot: ClusterSnapshot,
    horizon: int,
    app_forecasts: dict[str, AppForecast] | None = None,
    class_forecasts: dict[str, ClassForecast] | None = None,
) -> ClusterSnapshot:
    """Project ``snapshot`` forward by ``horizon`` intervals.

    ``app_forecasts`` / ``class_forecasts`` map app names and context keys
    to their forecasts; unforecasted entries are carried over unchanged
    (a class the forecaster has never observed keeps its last measured
    pressure).  ``horizon=0`` returns ``snapshot`` itself.
    """
    if horizon < 0:
        raise ValueError(f"horizon must be non-negative: {horizon}")
    if horizon == 0:
        return snapshot
    app_forecasts = app_forecasts or {}
    class_forecasts = class_forecasts or {}

    apps = tuple(
        _project_app(state, app_forecasts[state.app])
        if state.app in app_forecasts
        else state
        for state in snapshot.apps
    )
    classes = tuple(
        _project_class(state, class_forecasts[state.context_key])
        if state.context_key in class_forecasts
        else state
        for state in snapshot.classes
    )
    return replace(
        snapshot,
        interval_index=snapshot.interval_index + horizon,
        apps=apps,
        classes=classes,
    )
