"""Online per-class forecasters: Holt linear trend with confidence.

The reactive controller waits for an SLA violation before it diagnoses;
this module supplies the *looking-ahead* half of predictive enforcement.
Each tracked series (application mean latency and throughput, per-class
miss ratio, page pressure and arrival rate) feeds a :class:`HoltSeries` —
Holt's linear-trend double exponential smoothing, the same family
PerfEnforce uses for its performance-guarantee scaling — which yields a
horizon-``h`` extrapolation plus a **confidence** derived from its own
recent one-step-ahead error.  Everything is deterministic: the smoothing
recurrences contain no randomness, so the same observation sequence always
produces the same forecasts (the property suite pins exactly that), and
the configured ``seed`` is carried through to the planner search fired on
predicted snapshots.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "ForecastConfig",
    "HoltSeries",
    "ClassForecast",
    "AppForecast",
    "ClassForecaster",
    "AppForecaster",
]


@dataclass(frozen=True)
class ForecastConfig:
    """Tunables of the forecasting model (policy tunables live in
    :class:`repro.forecast.policy.PolicyConfig`)."""

    horizon: int = 2
    """Intervals ahead every forecast projects (``h`` in Holt's
    ``level + h * trend``)."""
    alpha: float = 0.5
    """Level smoothing factor: weight of the newest observation."""
    beta: float = 0.3
    """Trend smoothing factor: weight of the newest level delta."""
    error_alpha: float = 0.3
    """Smoothing factor of the one-step-ahead absolute-error EWMA that
    backs the confidence estimate."""
    min_observations: int = 3
    """Observations before a series reports non-zero confidence — one
    point fixes the level, a second the trend, a third the first real
    one-step error."""
    seed: int = 0
    """Recorded in every forecast record and used to seed the planner
    search fired on predicted snapshots; the smoothing itself is
    deterministic and consumes no randomness."""

    def __post_init__(self) -> None:
        if self.horizon < 1:
            raise ValueError("forecast horizon must be at least 1")
        for name in ("alpha", "beta", "error_alpha"):
            value = getattr(self, name)
            if not 0 < value <= 1:
                raise ValueError(f"{name} must be in (0, 1]")
        if self.min_observations < 1:
            raise ValueError("min observations must be at least 1")


@dataclass
class HoltSeries:
    """One scalar series under Holt linear-trend smoothing.

    ``forecast(0)`` returns the last raw observation — horizon zero means
    *now*, and the predicted snapshot at horizon zero must equal the
    current one byte for byte — while ``forecast(h >= 1)`` extrapolates
    ``level + h * trend``, floored at zero (latencies, miss ratios and
    pressures cannot go negative).
    """

    alpha: float = 0.5
    beta: float = 0.3
    error_alpha: float = 0.3
    level: float | None = None
    trend: float = 0.0
    last: float = 0.0
    observations: int = 0
    abs_error: float = 0.0
    """EWMA of the one-step-ahead absolute prediction error."""

    def observe(self, value: float) -> None:
        value = float(value)
        if self.level is None:
            self.level = value
        else:
            predicted = self.level + self.trend
            error = abs(value - predicted)
            self.abs_error = (
                self.error_alpha * error
                + (1.0 - self.error_alpha) * self.abs_error
            )
            new_level = self.alpha * value + (1.0 - self.alpha) * predicted
            self.trend = (
                self.beta * (new_level - self.level)
                + (1.0 - self.beta) * self.trend
            )
            self.level = new_level
        self.last = value
        self.observations += 1

    def forecast(self, horizon: int) -> float:
        if horizon < 0:
            raise ValueError(f"horizon must be non-negative: {horizon}")
        if horizon == 0:
            return self.last
        if self.level is None:
            return 0.0
        return max(self.level + horizon * self.trend, 0.0)

    def confidence(self, min_observations: int = 3) -> float:
        """``1 / (1 + relative one-step error)`` once the series has seen
        enough points; 0.0 before that (the policy then falls back to the
        reactive path instead of acting on a cold forecaster)."""
        if self.observations < min_observations or self.level is None:
            return 0.0
        scale = max(abs(self.level), 1e-9)
        return 1.0 / (1.0 + self.abs_error / scale)


@dataclass(frozen=True)
class ClassForecast:
    """One query class's projected state at ``horizon`` intervals ahead."""

    context_key: str
    horizon: int
    miss_ratio: float
    pressure: float
    arrival_rate: float
    confidence: float


@dataclass(frozen=True)
class AppForecast:
    """One application's projected SLA standing at ``horizon`` ahead."""

    app: str
    horizon: int
    mean_latency: float
    throughput: float
    confidence: float


def _series(config: ForecastConfig) -> HoltSeries:
    return HoltSeries(
        alpha=config.alpha, beta=config.beta, error_alpha=config.error_alpha
    )


@dataclass
class ClassForecaster:
    """Per-class dynamics: miss ratio, page pressure, arrival rate."""

    context_key: str
    config: ForecastConfig = field(default_factory=ForecastConfig)
    miss_ratio: HoltSeries = field(init=False)
    pressure: HoltSeries = field(init=False)
    arrival_rate: HoltSeries = field(init=False)

    def __post_init__(self) -> None:
        self.miss_ratio = _series(self.config)
        self.pressure = _series(self.config)
        self.arrival_rate = _series(self.config)

    def observe(
        self, miss_ratio: float, pressure: float, arrival_rate: float
    ) -> None:
        self.miss_ratio.observe(miss_ratio)
        self.pressure.observe(pressure)
        self.arrival_rate.observe(arrival_rate)

    def forecast(self, horizon: int | None = None) -> ClassForecast:
        h = self.config.horizon if horizon is None else horizon
        n = self.config.min_observations
        confidence = min(
            self.miss_ratio.confidence(n),
            self.pressure.confidence(n),
            self.arrival_rate.confidence(n),
        )
        return ClassForecast(
            context_key=self.context_key,
            horizon=h,
            miss_ratio=min(self.miss_ratio.forecast(h), 1.0),
            pressure=self.pressure.forecast(h),
            arrival_rate=self.arrival_rate.forecast(h),
            confidence=confidence,
        )


@dataclass
class AppForecaster:
    """Per-application SLA dynamics: mean latency and throughput."""

    app: str
    config: ForecastConfig = field(default_factory=ForecastConfig)
    latency: HoltSeries = field(init=False)
    throughput: HoltSeries = field(init=False)

    def __post_init__(self) -> None:
        self.latency = _series(self.config)
        self.throughput = _series(self.config)

    def observe(self, mean_latency: float, throughput: float) -> None:
        self.latency.observe(mean_latency)
        self.throughput.observe(throughput)

    def forecast(self, horizon: int | None = None) -> AppForecast:
        h = self.config.horizon if horizon is None else horizon
        n = self.config.min_observations
        return AppForecast(
            app=self.app,
            horizon=h,
            mean_latency=self.latency.forecast(h),
            throughput=self.throughput.forecast(h),
            confidence=self.latency.confidence(n),
        )
