"""The forecast engine: per-cluster state behind ``use_forecast``.

One :class:`ForecastEngine` lives on the controller when predictive
enforcement is enabled.  Each interval the controller feeds it the closed
measurements (:meth:`observe_interval`) — app latency/throughput plus
per-class miss ratio, pressure and arrival rate aggregated across the
analyzers — and then, for every application currently *meeting* its SLA,
asks :meth:`consider` whether the act-ahead policy wants to fire the
planner.  Violating applications never reach the engine: they stay on the
classic reactive path, which remains armed behind the forecast at all
times (the confidence/fallback contract).

Every decision becomes a :class:`~repro.forecast.score.ForecastRecord`;
act-ahead records are resolved to ``hit``/``false_alarm`` when their
prediction window closes, and an act whose plan turned out empty is
demoted on the spot (the policy refunds its token — nothing was risked).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from .model import (
    AppForecast,
    AppForecaster,
    ClassForecast,
    ClassForecaster,
    ForecastConfig,
)
from .policy import ActAheadPolicy, Decision, PolicyConfig
from .score import ForecastRecord, resolve_records

__all__ = ["AppObservation", "ClassObservation", "ForecastEngine"]


@dataclass(frozen=True)
class AppObservation:
    """One application's closed-interval measurements."""

    app: str
    mean_latency: float
    throughput: float
    sla_latency: float
    violated: bool


@dataclass(frozen=True)
class ClassObservation:
    """One query class's closed-interval measurements (cluster-wide)."""

    context_key: str
    miss_ratio: float
    pressure: float
    arrival_rate: float


class ForecastEngine:
    """Forecasters + act-ahead policy + the decision record stream."""

    def __init__(
        self,
        config: ForecastConfig | None = None,
        policy: PolicyConfig | None = None,
    ) -> None:
        self.config = config if config is not None else ForecastConfig()
        self.policy = ActAheadPolicy(policy)
        self.apps: dict[str, AppForecaster] = {}
        self.classes: dict[str, ClassForecaster] = {}
        self.records: list[ForecastRecord] = []
        self.sla_latencies: dict[str, float] = {}
        self.plans_applied = 0
        self.empty_plans = 0
        self.scale_outs = 0

    # ------------------------------------------------------------------ #
    # Observation                                                        #
    # ------------------------------------------------------------------ #

    def observe_interval(
        self,
        interval: int,
        app_observations: list[AppObservation],
        class_observations: list[ClassObservation],
    ) -> None:
        """Feed one closed interval; resolves due act-ahead predictions."""
        for obs in app_observations:
            self.sla_latencies[obs.app] = obs.sla_latency
            forecaster = self.apps.get(obs.app)
            if forecaster is None:
                forecaster = AppForecaster(obs.app, self.config)
                self.apps[obs.app] = forecaster
            forecaster.observe(obs.mean_latency, obs.throughput)
            for outcome in self.policy.resolve(
                obs.app, interval, obs.violated
            ):
                resolve_records(self.records, obs.app, interval, outcome)
        for obs in class_observations:
            forecaster = self.classes.get(obs.context_key)
            if forecaster is None:
                forecaster = ClassForecaster(obs.context_key, self.config)
                self.classes[obs.context_key] = forecaster
            forecaster.observe(obs.miss_ratio, obs.pressure, obs.arrival_rate)

    # ------------------------------------------------------------------ #
    # Forecasting + deciding                                             #
    # ------------------------------------------------------------------ #

    def app_forecasts(self) -> dict[str, AppForecast]:
        return {
            app: forecaster.forecast()
            for app, forecaster in sorted(self.apps.items())
        }

    def class_forecasts(self) -> dict[str, ClassForecast]:
        return {
            key: forecaster.forecast()
            for key, forecaster in sorted(self.classes.items())
        }

    def consider(
        self, app: str, interval: int
    ) -> tuple[Decision, AppForecast | None]:
        """Gate ``app``'s forecast through the act-ahead policy and record
        the decision.  Returns ``(decision, forecast)``; a never-observed
        app yields a non-acting ``low-confidence`` decision."""
        forecaster = self.apps.get(app)
        sla_latency = self.sla_latencies.get(app, 0.0)
        if forecaster is None or sla_latency <= 0:
            decision = Decision(
                app=app,
                interval=interval,
                act=False,
                reason="low-confidence",
            )
            self._record(decision)
            return decision, None
        forecast = forecaster.forecast()
        decision = self.policy.decide(
            app=app,
            interval=interval,
            horizon=forecast.horizon,
            predicted_latency=forecast.mean_latency,
            sla_latency=sla_latency,
            confidence=forecast.confidence,
        )
        self._record(decision, forecast.horizon)
        return decision, forecast

    def note_empty_plan(self, app: str, interval: int) -> None:
        """An act-ahead fired but the planner found no improving move:
        refund the token and demote the record — no action was applied, so
        the act cannot thrash the cluster or spend the budget."""
        self.empty_plans += 1
        self.policy.refund(app, interval)
        for index in range(len(self.records) - 1, -1, -1):
            record = self.records[index]
            if record.app == app and record.interval == interval:
                self.records[index] = replace(
                    record, acted=False, decision="empty-plan", outcome="none"
                )
                break

    def note_plan_applied(self) -> None:
        self.plans_applied += 1

    def note_scale_out(self) -> None:
        """An act-ahead provisioned a replica directly (the planner had no
        fine-grained move for the predicted snapshot)."""
        self.scale_outs += 1

    def _record(self, decision: Decision, horizon: int | None = None) -> None:
        self.records.append(
            ForecastRecord(
                interval=decision.interval,
                app=decision.app,
                horizon=(
                    horizon if horizon is not None else self.config.horizon
                ),
                predicted_latency=decision.predicted_latency,
                threshold=decision.threshold,
                confidence=decision.confidence,
                decision=decision.reason,
                acted=decision.act,
                seed=self.config.seed,
                outcome="pending" if decision.act else "none",
            )
        )

    # ------------------------------------------------------------------ #
    # Reporting                                                          #
    # ------------------------------------------------------------------ #

    def stats(self) -> dict:
        """JSON-able engine counters (the forecast_smoke gate's view)."""
        acted = [r for r in self.records if r.acted]
        return {
            "decisions": len(self.records),
            "acted": len(acted),
            "plans_applied": self.plans_applied,
            "empty_plans": self.empty_plans,
            "scale_outs": self.scale_outs,
            "hits": sum(1 for r in acted if r.outcome == "hit"),
            "false_alarms": sum(
                1 for r in acted if r.outcome == "false_alarm"
            ),
            "pending": sum(1 for r in acted if r.outcome == "pending"),
            "budget_remaining": self.policy.budget,
        }
