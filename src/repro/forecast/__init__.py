"""Predictive SLA enforcement: forecast load, act before the violation.

The reactive controller (ICDE'07) waits for an SLA violation, diagnoses
the outlier, and retunes — the violation has already been served to
users.  This package closes that gap with a PerfEnforce-style predictive
loop: per-class and per-app Holt linear-trend forecasters learn the
latency/pressure dynamics online, project a :class:`ClusterSnapshot`
``horizon`` intervals ahead, and feed it to the *existing* capacity
planner so the cluster is re-tuned before the predicted violation lands.
An act-ahead policy (confidence gate, hysteresis, cooldown, refundable
false-positive budget) keeps a noisy forecaster from thrashing the
cluster, and every decision is recorded and later resolved against
reality so the eval can score hits, false alarms, and SLA-violation
intervals avoided versus the reactive baseline.

Everything is opt-in behind ``ControllerConfig.use_forecast``; with the
flag off, no forecast code runs and every artefact stays byte-identical.
"""

from .engine import AppObservation, ClassObservation, ForecastEngine
from .model import (
    AppForecast,
    AppForecaster,
    ClassForecast,
    ClassForecaster,
    ForecastConfig,
    HoltSeries,
)
from .policy import ActAheadPolicy, Decision, PolicyConfig
from .predictor import predicted_snapshot
from .score import (
    ForecastRecord,
    ForecastScore,
    resolve_records,
    score_forecasts,
    validation_summary,
)

__all__ = [
    "ActAheadPolicy",
    "AppForecast",
    "AppForecaster",
    "AppObservation",
    "ClassForecast",
    "ClassForecaster",
    "ClassObservation",
    "Decision",
    "ForecastConfig",
    "ForecastEngine",
    "ForecastRecord",
    "ForecastScore",
    "HoltSeries",
    "PolicyConfig",
    "predicted_snapshot",
    "resolve_records",
    "score_forecasts",
    "validation_summary",
]
