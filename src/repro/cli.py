"""Command-line interface: regenerate any of the paper's artefacts.

Usage::

    python -m repro list                 # what can be reproduced
    python -m repro fig3                 # sine load / CPU provisioning
    python -m repro fig4                 # index drop / outlier detection
    python -m repro fig5 | fig6          # miss-ratio curves
    python -m repro table1 | table2 | table3
    python -m repro locks                # the future-work lock scenario
    python -m repro obs report           # telemetry summary of the quickstart
    python -m repro zoo                  # anomaly zoo + detection quality
    python -m repro plan --validate      # capacity plan + what-if validation
    python -m repro forecast             # reactive vs predictive SLA diff
    python -m repro bench --parallel 4   # benchmark scenarios, sharded
    python -m repro all                  # everything, in order

Each command runs the corresponding deterministic experiment and prints
the reproduced table/series next to the paper's reference numbers.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from .analysis.report import Table, format_series

__all__ = ["main"]


def _fig3(args) -> int:
    from .experiments.cpu_saturation import CPUSaturationConfig, run_cpu_saturation

    result = run_cpu_saturation(CPUSaturationConfig(intervals=args.intervals or 72))
    print(
        format_series(
            "Figure 3(a) — clients",
            [(t, float(c)) for t, c in result.load_series],
            x_label="t (s)",
            y_label="clients",
        )
    )
    print()
    print(
        format_series(
            "Figure 3(b) — replicas",
            [(t, float(a)) for t, a in result.allocation_series],
            x_label="t (s)",
            y_label="replicas",
        )
    )
    print()
    print(
        format_series(
            "Figure 3(c) — mean latency (SLA 1 s)",
            result.latency_series,
            x_label="t (s)",
            y_label="latency",
        )
    )
    print(f"\npeak replicas: {result.peak_replicas}")
    return 0


def _fig4(args) -> int:
    from .experiments.index_drop import IndexDropConfig, run_index_drop

    result = run_index_drop(IndexDropConfig(clients=args.clients or 60))
    for metric in ("latency", "throughput", "misses", "readaheads"):
        print(result.ratio_table(metric).render())
        print()
    print(f"outlier contexts: {result.outlier_contexts}")
    print(
        f"latency: {result.latency_before:.2f} s -> "
        f"{result.latency_violation:.2f} s -> {result.latency_after:.2f} s"
    )
    for action in result.actions:
        for context, pages in action.quota_map().items():
            print(f"quota enforced: {context} = {pages} pages (paper: 3695)")
    return 0


def _fig5(args) -> int:
    from .experiments.mrc_curves import (
        run_fig5_bestseller,
        run_fig5_bestseller_degraded,
    )

    indexed = run_fig5_bestseller(executions=args.executions or 400)
    degraded = run_fig5_bestseller_degraded(executions=(args.executions or 400) // 5)
    print(indexed.to_table().render())
    print(
        f"\nindexed plan:  acceptable {indexed.params.acceptable_memory} pages "
        "(paper: 6982)"
    )
    print(
        f"degraded plan: acceptable {degraded.params.acceptable_memory} pages; "
        f"ideal miss ratio {degraded.params.ideal_miss_ratio:.2f} "
        "(flat curve — the quota search allots pool-minus-others, paper: 3695)"
    )
    return 0


def _fig6(args) -> int:
    from .experiments.mrc_curves import run_fig6_search_items_by_region

    result = run_fig6_search_items_by_region(executions=args.executions or 200)
    print(result.to_table().render())
    print(
        f"\nacceptable memory: {result.params.acceptable_memory} pages "
        "(paper: 7906 of an 8192-page pool)"
    )
    return 0


def _table1(args) -> int:
    from .experiments.buffer_partitioning import (
        BufferPartitioningConfig,
        run_buffer_partitioning,
    )

    result = run_buffer_partitioning(BufferPartitioningConfig())
    print(result.to_table().render())
    print(f"\nBestSeller quota: {result.quota_pages} pages (paper: 3695)")
    print("paper: shared 95.5/96.2, partitioned 95.7/99.5, exclusive 96.1/99.9")
    return 0


def _table2(args) -> int:
    from .experiments.memory_contention import (
        MemoryContentionConfig,
        run_memory_contention,
    )

    result = run_memory_contention(MemoryContentionConfig())
    print(result.to_table().render())
    print("\npaper: 0.54/8.73 -> 5.42/4.29 -> 1.27/6.44")
    print(f"rescheduled: {result.rescheduled_context}")
    return 0


def _table3(args) -> int:
    from .experiments.io_contention import IOContentionConfig, run_io_contention

    result = run_io_contention(
        IOContentionConfig(clients_per_instance=args.clients or 150)
    )
    print(result.to_table().render())
    print("\npaper: 1.5/97 -> 4.8/30 -> 1.5/95")
    print(
        f"heaviest I/O context: {result.heaviest_io_context} "
        f"({result.heaviest_io_share:.0%}; paper: 87%)"
    )
    return 0


def _locks(args) -> int:
    from .experiments.lock_contention import (
        LockContentionConfig,
        run_lock_contention,
    )

    result = run_lock_contention(LockContentionConfig(clients=args.clients or 50))
    table = Table(
        title="Lock contention (wrong-arguments AdminUpdate)",
        headers=["phase", "mean latency (s)", "lock-wait share"],
    )
    table.add_row("baseline", f"{result.latency_before:.2f}",
                  f"{result.baseline_lock_wait_share:.1%}")
    table.add_row("fault", f"{result.latency_during:.2f}",
                  f"{result.lock_wait_share:.1%}")
    print(table.render())
    print(f"\nreported aggressor: {result.reported_aggressor}")
    if result.reports:
        print(f"report: {result.reports[0].reason}")
    return 0


def _obs(args) -> int:
    """``repro obs report`` — run the instrumented quickstart, summarise it."""
    from .obs import Observability, telemetry_lines
    from .obs.report import TelemetrySummary

    if getattr(args, "input", None):
        try:
            text = open(args.input, encoding="utf-8").read()
        except OSError as error:
            print(f"repro obs report: cannot read {args.input}: {error}",
                  file=sys.stderr)
            return 2
        try:
            summary = TelemetrySummary.from_lines(
                line for line in text.splitlines() if line
            )
        except ValueError as error:  # bad JSON or unknown record type
            print(f"repro obs report: malformed telemetry in {args.input}: "
                  f"{error}", file=sys.stderr)
            return 2
        print(summary.render())
        return 0

    obs = Observability()
    scenario = getattr(args, "scenario", "index-drop")
    allocation_lines: list[str] = []
    if scenario == "quickstart":
        import json as _json

        from .analysis.export import allocation_records
        from .experiments.runner import quickstart_scenario

        intervals = args.intervals or 12
        clients = args.clients or 25
        harness, _ = quickstart_scenario(
            obs=obs, intervals=intervals, clients=clients
        )
        meta = {
            "scenario": "quickstart",
            "intervals": intervals,
            "clients": clients,
            "seed": 7,
        }
        # Feed the allocation timeline to the report only: the exported
        # telemetry (and its byte-identical golden) stays untouched.
        allocation_lines = [
            _json.dumps(record, sort_keys=True)
            for record in allocation_records(
                harness.controller.resource_manager
            )
        ]
    else:
        from .experiments.index_drop import IndexDropConfig, run_index_drop

        clients = args.clients or 60
        run_index_drop(IndexDropConfig(clients=clients), obs=obs)
        meta = {"scenario": "index-drop", "clients": clients, "seed": 7}
    lines = telemetry_lines(obs, meta=meta) + allocation_lines
    if getattr(args, "export", None):
        from .analysis.export import export_telemetry

        path = export_telemetry(args.export, obs, meta=meta)
        print(f"telemetry written: {path}")
        print()
    summary = TelemetrySummary.from_lines(lines)
    print(summary.render())
    return 0


def _plan(args) -> int:
    """``repro plan`` — capacity planner on the contended planning point.

    Rebuilds the memory-contention scenario up to the moment the paper's
    controller would first react, snapshots the cluster, searches a
    capacity plan and prints it.  ``--validate`` replays the plan in a
    forked harness and compares predicted vs simulated miss ratios;
    ``--apply`` actuates it on the scenario copy and reports the actions.
    """
    from .experiments.planner_sweep import (
        PlannerSweepConfig,
        plan_at_planning_point,
        validate_at_planning_point,
    )

    config = PlannerSweepConfig(planner_seed=args.seed)
    plan, harness = plan_at_planning_point(config)
    print(plan.render())
    print(f"\nplan digest: {plan.digest()}")
    status = 0
    if args.validate:
        validation = validate_at_planning_point(plan, config)
        print()
        print(validation.render())
        if not validation.ok:
            status = 1
    if args.apply:
        actions = harness.controller.apply_plan(plan, harness.clock.now)
        print(f"\napplied {len(actions)} actions:")
        for action in actions:
            print(f"  {action.kind.value}: {action.reason}")
        released = [
            event
            for event in harness.controller.resource_manager.history
            if event.action == "release"
        ]
        if released:
            print(f"  plus {len(released)} replica release(s)")
    if args.export:
        from .analysis.export import export_result

        path = export_result(args.export, plan.to_jsonable())
        print(f"\nplan written: {path}")
    return status


def _chaos_storm(args) -> int:
    """``repro chaos --seed N`` — replay one seeded random storm."""
    from .experiments.chaos import (
        ChaosStormConfig,
        build_storm_plan,
        run_chaos_storm,
    )

    config = ChaosStormConfig(
        seed=args.seed,
        events=args.events,
        intervals=args.intervals or ChaosStormConfig.intervals,
        clients=args.clients or ChaosStormConfig.clients,
    )
    # The plan is a pure function of (seed, config): print it up front so
    # the operator sees what is about to hit the cluster, then replay it.
    plan = build_storm_plan(config, "tpcw")
    table = Table(
        title=f"storm plan (seed {config.seed}, {config.events} events)",
        headers=["t (s)", "fault", "target", "duration (s)"],
    )
    for event in plan.ordered():
        table.add_row(
            f"{event.at:.1f}",
            event.kind.value,
            event.target,
            f"{event.duration:.1f}" if event.duration else "-",
        )
    print(table.render())
    print()

    result = run_chaos_storm(config)
    print(
        format_series(
            f"storm — mean latency (seed {config.seed})",
            result.latency_series,
            x_label="t (s)",
            y_label="latency",
        )
    )
    table = Table(title="storm outcome", headers=["measure", "value"])
    table.add_row("SLA violations", str(result.violations))
    table.add_row("controller crashes", str(result.controller_crashes))
    table.add_row("controller restarts", str(result.controller_restarts))
    table.add_row("interval closes missed", str(result.missed_intervals))
    table.add_row("final controller epoch", str(result.epoch_final))
    table.add_row("duplicate actions", str(result.duplicate_actions))
    table.add_row("unmatched faults", str(result.unmatched_faults))
    print(table.render())
    print(f"\nfaults injected: {result.faults_injected}")
    print(f"final latency: {result.final_latency:.3f} s "
          f"(SLA {result.sla_latency:.1f} s, "
          f"met at end: {result.sla_met_at_end()})")
    return 0


def _chaos(args) -> int:
    """``repro chaos`` — the fault-injection storm and its degraded modes."""
    from .experiments.chaos import ChaosConfig, run_chaos

    if getattr(args, "seed", None) is not None:
        return _chaos_storm(args)
    config = ChaosConfig()
    if args.intervals:
        config = ChaosConfig(intervals=args.intervals)
    if args.clients:
        config = ChaosConfig(intervals=config.intervals, clients=args.clients)
    result = run_chaos(config)
    print(
        format_series(
            "Chaos — mean latency (crash at t=125, recovery at t=205)",
            result.latency_series,
            x_label="t (s)",
            y_label="latency",
        )
    )
    table = Table(
        title="fault reactions",
        headers=["measure", "value"],
    )
    table.add_row("re-route intervals after crash", str(result.reroute_intervals))
    table.add_row("quarantined windows", str(result.quarantined_intervals))
    table.add_row(
        "violating+degraded intervals", str(result.violating_degraded_intervals)
    )
    table.add_row(
        "actions during quarantine", str(result.actions_during_quarantine)
    )
    table.add_row(
        "SLA violations during outage", str(result.violations_during_outage)
    )
    table.add_row(
        "intervals to SLA recovery", str(result.sla_recovery_intervals)
    )
    table.add_row(
        "stale pending writes dropped", str(result.pending_stale_dropped)
    )
    print(table.render())
    print(f"\nfaults injected: {result.faults_injected}")
    print(f"final latency: {result.final_latency:.3f} s "
          f"(SLA {result.sla_latency:.1f} s, "
          f"met at end: {result.sla_met_at_end()})")
    return 0


def _zoo(args) -> int:
    """``repro zoo`` — run workload-zoo scenarios, score detection quality."""
    from .workloads.zoo import ZOO_SCENARIOS, zoo_scenario_names

    if getattr(args, "list", False):
        print("Workload-zoo scenarios:")
        for name in zoo_scenario_names():
            scenario = ZOO_SCENARIOS[name](7)
            print(f"  {name:20s} {scenario.description}")
        return 0

    from .experiments.zoo import run_zoo

    names = [args.scenario] if args.scenario else zoo_scenario_names()
    unknown = sorted(set(names) - set(zoo_scenario_names()))
    if unknown:
        print(f"repro zoo: unknown scenario(s) {unknown}; "
              f"known: {zoo_scenario_names()}", file=sys.stderr)
        return 2
    seed = args.seed if args.seed is not None else 7
    table = Table(
        title=f"workload zoo — detection quality (seed {seed})",
        headers=["scenario", "precision", "recall", "F1", "tp", "fp", "fn",
                 "actions"],
    )
    reports = []
    for name in names:
        result = run_zoo(name, seed=seed)
        quality = result.quality
        reports.append(quality)
        table.add_row(
            name,
            f"{quality.precision:.3f}",
            f"{quality.recall:.3f}",
            f"{quality.f1:.3f}",
            str(quality.true_positives),
            str(quality.false_positives),
            str(quality.false_negatives),
            str(len(result.actions)),
        )
    print(table.render())
    if getattr(args, "export", None):
        from .analysis.export import export_quality

        path = export_quality(
            args.export,
            reports,
            meta={"scenario": "zoo", "seed": seed, "runs": names},
        )
        print(f"\nquality report written: {path}")
    return 0


def _forecast(args) -> int:
    """``repro forecast`` — reactive vs predictive SLA enforcement.

    Runs the forecast evaluation: two forecastable scenarios (the
    flash-crowd surge and a ramping chaos I/O slowdown), each once with
    the classic reactive controller and once with
    ``ControllerConfig.use_forecast``, then the frozen planning-point
    validation (predicted snapshot -> plan -> what-if replay).
    """
    from .experiments.forecast_eval import (
        ForecastEvalConfig,
        forecast_eval_artefact,
        run_forecast_eval,
    )

    config = ForecastEvalConfig()
    if args.horizon is not None:
        config = ForecastEvalConfig(horizon=args.horizon)
    if args.margin is not None:
        config = ForecastEvalConfig(
            horizon=config.horizon, margin=args.margin
        )
    result = run_forecast_eval(config)
    artefact = forecast_eval_artefact(result)

    table = Table(
        title=f"reactive vs predictive (horizon {config.horizon}, "
              f"margin {config.margin:g})",
        headers=["scenario", "reactive", "predictive", "avoided",
                 "acted", "hits", "false alarms", "budget left"],
    )
    for outcome in result.outcomes:
        score = outcome.score
        table.add_row(
            outcome.name,
            str(score.violations_reactive),
            str(score.violations_predictive),
            str(score.intervals_avoided),
            str(score.acted),
            str(score.hits),
            str(score.false_alarms),
            str(outcome.stats.get("budget_remaining", 0)),
        )
    print(table.render())
    print()
    for outcome in result.outcomes:
        print(f"{outcome.name:12s} reactive   {outcome.sla_reactive}")
        print(f"{'':12s} predictive {outcome.sla_predictive}")
    print(f"\nSLA-violation intervals avoided: "
          f"{result.total_intervals_avoided}")
    if result.plan is not None:
        print(f"planning-point plan: {len(result.plan.steps)} steps, "
              f"digest {result.plan.digest()[:16]}")
    if result.validation is not None:
        checks = artefact["validation"]
        print(f"predicted vs simulated: max relative error "
              f"{checks['max_relative_error']:.4f} "
              f"(ok: {checks['ok']})")
    status = 0
    if result.validation is not None and not result.validation.ok:
        status = 1
    if args.export:
        from .analysis.export import export_result

        path = export_result(args.export, artefact)
        print(f"\nartefact written: {path}")
    if args.records:
        from .analysis.export import export_forecast

        path = export_forecast(
            args.records,
            result.records(),
            meta={
                "scenario": "forecast_eval",
                "seed": config.seed,
                "horizon": config.horizon,
            },
        )
        print(f"forecast records written: {path}")
    return status


def _bench(args) -> int:
    """``repro bench`` — run the benchmark scenario registry.

    ``--parallel N`` shards the scenarios across N worker processes;
    artefacts are byte-identical to a serial run (every scenario seeds its
    own RNGs), only the wall clock changes.
    """
    from .experiments.bench import run_bench_command

    return run_bench_command(args)


def _list(args) -> int:
    print("Reproducible artefacts:")
    for name, help_text in sorted(_COMMANDS.items()):
        if name not in ("list", "all"):
            print(f"  {name:8s} {help_text[1]}")
    return 0


def _all(args) -> int:
    status = 0
    for name in ("fig3", "fig4", "fig5", "fig6", "table1", "table2", "table3", "locks"):
        print(f"\n{'=' * 20} {name} {'=' * 20}")
        status |= _COMMANDS[name][0](args)
    return status


_COMMANDS = {
    "list": (_list, "list the reproducible artefacts"),
    "fig3": (_fig3, "sine client load, reactive CPU provisioning"),
    "fig4": (_fig4, "index drop: metric ratios, outliers, quota"),
    "fig5": (_fig5, "BestSeller miss-ratio curve"),
    "fig6": (_fig6, "SearchItemsByRegion miss-ratio curve"),
    "table1": (_table1, "buffer-pool organisations: hit ratios"),
    "table2": (_table2, "shared-pool memory contention (TPC-W + RUBiS)"),
    "table3": (_table3, "Xen dom0 I/O contention (two RUBiS domains)"),
    "locks": (_locks, "lock-contention anomaly (the paper's future work)"),
    "chaos": (_chaos, "fault-injection storm: failover, quarantine, recovery"),
    "plan": (_plan, "capacity planner: print/validate/apply a cluster plan"),
    "forecast": (_forecast, "predictive SLA enforcement: reactive vs forecast"),
    "obs": (_obs, "telemetry: span timings, recomputations, actions"),
    "zoo": (_zoo, "workload zoo: anomaly scenarios, detection quality"),
    "bench": (_bench, "benchmark scenarios: run, time, check baselines"),
    "all": (_all, "run every artefact in order"),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Regenerate the tables and figures of 'Outlier Detection for "
            "Fine-grained Load Balancing in Database Clusters' (ICDE 2007)."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    for name, (_, help_text) in _COMMANDS.items():
        if name == "obs":
            # Observability has its own sub-tree: `repro obs report [...]`.
            obs = subparsers.add_parser(name, help=help_text)
            obs_subparsers = obs.add_subparsers(dest="obs_command", required=True)
            report = obs_subparsers.add_parser(
                "report",
                help="run an instrumented scenario and summarise telemetry",
            )
            report.add_argument("--scenario", choices=("index-drop", "quickstart"),
                                default="index-drop",
                                help="which scenario to instrument (default: "
                                     "index-drop, the full retuning pipeline)")
            report.add_argument("--clients", type=int, default=None,
                                help="override the emulated client population")
            report.add_argument("--intervals", type=int, default=None,
                                help="override the number of measurement intervals")
            report.add_argument("--export", type=str, default=None,
                                help="also write telemetry JSONL to this path")
            report.add_argument("--input", type=str, default=None,
                                help="summarise an existing telemetry JSONL "
                                     "instead of running the scenario")
            continue
        if name == "bench":
            from .experiments.bench import add_bench_arguments

            bench = subparsers.add_parser(name, help=help_text)
            add_bench_arguments(bench)
            continue
        if name == "zoo":
            zoo = subparsers.add_parser(name, help=help_text)
            zoo.add_argument("--list", action="store_true",
                             help="list the zoo scenarios and exit")
            zoo.add_argument("--scenario", type=str, default=None,
                             help="run one scenario (default: all)")
            zoo.add_argument("--seed", type=int, default=None,
                             help="scenario seed (default: 7, the baseline "
                                  "seed)")
            zoo.add_argument("--export", type=str, default=None,
                             help="also write the quality report as JSONL "
                                  "to this path")
            continue
        if name == "chaos":
            chaos = subparsers.add_parser(name, help=help_text)
            chaos.add_argument("--clients", type=int, default=None,
                               help="override the emulated client population")
            chaos.add_argument("--intervals", type=int, default=None,
                               help="override the number of measurement "
                                    "intervals")
            chaos.add_argument("--seed", type=int, default=None,
                               help="replay a seeded *random* storm instead "
                                    "of the scripted one (the plan is "
                                    "printed before the replay; same seed, "
                                    "same storm)")
            chaos.add_argument("--events", type=int, default=6,
                               help="events in the random storm "
                                    "(default: %(default)s; only with "
                                    "--seed)")
            continue
        if name == "forecast":
            forecast = subparsers.add_parser(name, help=help_text)
            forecast.add_argument("--horizon", type=int, default=None,
                                  help="forecast horizon in intervals "
                                       "(default: 2)")
            forecast.add_argument("--margin", type=float, default=None,
                                  help="act-ahead margin as a fraction of "
                                       "the SLA (default: 0.9)")
            forecast.add_argument("--export", type=str, default=None,
                                  help="also write the eval artefact as "
                                       "JSON to this path")
            forecast.add_argument("--records", type=str, default=None,
                                  help="also write the forecast-decision "
                                       "records as JSONL to this path")
            continue
        if name == "plan":
            plan = subparsers.add_parser(name, help=help_text)
            plan.add_argument("--seed", type=int, default=0,
                              help="planner search seed (default: 0)")
            plan.add_argument("--validate", action="store_true",
                              help="replay the plan in a forked harness and "
                                   "compare predicted vs simulated miss "
                                   "ratios (exit 1 on mismatch)")
            plan.add_argument("--apply", action="store_true",
                              help="actuate the plan on the scenario copy "
                                   "and report the resulting actions")
            plan.add_argument("--export", type=str, default=None,
                              help="also write the plan as JSON to this path")
            continue
        sub = subparsers.add_parser(name, help=help_text)
        sub.add_argument("--clients", type=int, default=None,
                         help="override the emulated client population")
        sub.add_argument("--intervals", type=int, default=None,
                         help="override the number of measurement intervals")
        sub.add_argument("--executions", type=int, default=None,
                         help="override trace length (MRC commands)")
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handler = _COMMANDS[args.command][0]
    return handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
