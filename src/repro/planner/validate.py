"""What-if validation: replay a capacity plan in a forked harness.

The planner's predictions come from MRC slices; this module checks them
against ground truth.  ``validate_plan`` builds a *fresh* harness from a
deterministic factory (sim-clock, empty fault plan — the same scenario the
snapshot was taken from, replayed from its planning point), applies the
plan through ``ClusterController.apply_plan``, lets the pools warm up, and
then measures each plan-touched class's real miss ratio from the engines'
cumulative per-class counters over a measurement window.

The simulated ratio counts *physical fetches* — demand misses plus pages
brought in by read-ahead — over demand accesses.  Mattson curves model
plain LRU with no prefetching, so a scan the engine satisfies through
read-ahead still cost the storage reads the curve predicted; comparing
against demand misses alone would flatter the prediction with work the
prefetcher did.

A class passes when ``|predicted - simulated| / max(simulated, floor)``
is within the tolerance (25% by default, matching the acceptance bar).
The floor keeps near-zero simulated ratios from exploding the relative
error — at miss ratios under 2% the absolute error is what matters.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..obs import NULL_OBS, Observability
from .plan import CapacityPlan, PlanStepKind

__all__ = ["ClassCheck", "PlanValidation", "validate_plan"]

ERROR_FLOOR = 0.02


@dataclass(frozen=True)
class ClassCheck:
    """Predicted-vs-simulated verdict for one class."""

    context_key: str
    predicted_miss_ratio: float
    simulated_miss_ratio: float
    accesses: int
    tolerance: float

    @property
    def relative_error(self) -> float:
        gap = abs(self.predicted_miss_ratio - self.simulated_miss_ratio)
        return gap / max(self.simulated_miss_ratio, ERROR_FLOOR)

    @property
    def ok(self) -> bool:
        return self.accesses == 0 or self.relative_error <= self.tolerance


@dataclass
class PlanValidation:
    """The validator's report for one plan replay."""

    checks: list[ClassCheck] = field(default_factory=list)
    warmup_intervals: int = 0
    measure_intervals: int = 0

    @property
    def ok(self) -> bool:
        return all(check.ok for check in self.checks)

    @property
    def max_relative_error(self) -> float:
        measured = [c.relative_error for c in self.checks if c.accesses > 0]
        return max(measured, default=0.0)

    def render(self) -> str:
        lines = [
            f"plan validation: {len(self.checks)} classes, "
            f"{self.warmup_intervals} warmup + "
            f"{self.measure_intervals} measured intervals -> "
            + ("OK" if self.ok else "MISMATCH"),
        ]
        for check in self.checks:
            if check.accesses == 0:
                verdict = "no traffic"
            else:
                verdict = (
                    f"err {check.relative_error:.0%} "
                    + ("ok" if check.ok else "EXCEEDS")
                )
            lines.append(
                f"  {check.context_key}: predicted "
                f"{check.predicted_miss_ratio:.3f}, simulated "
                f"{check.simulated_miss_ratio:.3f} ({verdict})"
            )
        return "\n".join(lines)


def _per_class_counters(controller) -> dict[str, tuple[int, int, int]]:
    """(hits, misses, readaheads) per context key over every engine."""
    totals: dict[str, tuple[int, int, int]] = {}
    seen: set[str] = set()
    for analyzer in controller.analyzers():
        engine = analyzer.engine
        if engine.name in seen:
            continue
        seen.add(engine.name)
        for key, counters in engine.pool.stats.per_class.items():
            hits, misses, readaheads = totals.get(key, (0, 0, 0))
            totals[key] = (
                hits + counters.get("hits", 0),
                misses + counters.get("misses", 0),
                readaheads + counters.get("readaheads", 0),
            )
    return totals


def validate_plan(
    plan: CapacityPlan,
    harness_factory,
    warmup_intervals: int = 2,
    measure_intervals: int = 4,
    tolerance: float = 0.25,
    obs: Observability | None = None,
) -> PlanValidation:
    """Replay ``plan`` in a forked harness and compare miss ratios.

    ``harness_factory()`` must rebuild the scenario deterministically up to
    the planning point and return the harness — the fork is a rebuild, not
    a deep copy, so the live cluster is never touched.  Checked classes are
    the ones the plan directly tunes (quota'd or migrated); every class in
    the plan's outlook table is reported.
    """
    if warmup_intervals < 0 or measure_intervals < 1:
        raise ValueError("need non-negative warmup and >= 1 measured interval")
    obs = obs if obs is not None else NULL_OBS
    with obs.tracer.span(
        "planner.validate", attrs={"steps": len(plan.steps)}
    ) as span:
        harness = harness_factory()
        controller = harness.controller
        controller.apply_plan(plan, harness.clock.now)
        if warmup_intervals:
            harness.run(warmup_intervals)
        before = _per_class_counters(controller)
        harness.run(measure_intervals)
        after = _per_class_counters(controller)
        span.add_cost(warmup_intervals + measure_intervals)

        touched = {
            step.context_key
            for step in plan.steps
            if step.kind
            in (PlanStepKind.SET_QUOTA, PlanStepKind.MIGRATE_CLASS)
            and step.context_key
        }
        validation = PlanValidation(
            warmup_intervals=warmup_intervals,
            measure_intervals=measure_intervals,
        )
        for outlook in plan.outlooks:
            key = outlook.context_key
            if key not in touched:
                continue
            hits_0, misses_0, ra_0 = before.get(key, (0, 0, 0))
            hits_1, misses_1, ra_1 = after.get(key, (0, 0, 0))
            accesses = (hits_1 - hits_0) + (misses_1 - misses_0)
            fetched = (misses_1 - misses_0) + (ra_1 - ra_0)
            simulated = fetched / accesses if accesses else 0.0
            validation.checks.append(
                ClassCheck(
                    context_key=key,
                    predicted_miss_ratio=outlook.predicted_miss_ratio,
                    simulated_miss_ratio=simulated,
                    accesses=accesses,
                    tolerance=tolerance,
                )
            )
        span.set_attr("checks", len(validation.checks))
        span.set_attr("ok", int(validation.ok))
    return validation
