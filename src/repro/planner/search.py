"""Deterministic candidate-move generation and greedy plan search.

The search walks the space of cluster arrangements one move at a time:

* **migrate** a class to another pool its application has (or could have —
  each idle server contributes a placeholder pool ``new:<app>:<server>``
  that an ADD_REPLICA step materialises),
* **swap** two classes between pools,
* **set / clear a quota** for a class inside its pool (candidate sizes are
  the class's MRC knees: acceptable and total memory),
* **release** a replica whose pool no longer serves any planned class.

Each candidate state is scored with the cluster-scope advisor
(:func:`repro.core.assess_cluster`): the score is the pressure-weighted sum
of predicted miss-ratio excess over each class's acceptable ratio, plus a
per-replica holding cost, plus the amortised cold-partition cost of every
move already taken (a migrated class or rebuilt partition refills its
working set from storage at ``io_time_per_page`` per page — PR 4's recovery
assumption).  Greedy hill-climbing applies the best strictly-improving move
until none exists or ``max_steps`` is reached.

Determinism: moves are generated in sorted order, compared on exact score
first, and ties are broken by ``sha256(seed:move_key)`` — so the same
snapshot and seed always yield the byte-identical plan.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from ..core.advisor import ClusterAssessment, PoolAssignment, assess_cluster
from ..obs import NULL_OBS, Observability
from .model import ClusterSnapshot, WorkloadSummary
from .plan import CapacityPlan, ClassOutlook, PlanStep, PlanStepKind

__all__ = ["PlannerConfig", "search_plan"]

NEW_POOL_PREFIX = "new:"


@dataclass(frozen=True)
class PlannerConfig:
    """Search tunables.  All defaults are deliberately conservative."""

    seed: int = 0
    max_steps: int = 6
    summary_k: int = 12
    slice_points: int = 24
    replica_weight: float = 0.05
    """Holding cost per provisioned replica, in score units — what a new
    replica must beat in predicted miss-ratio improvement to be worth it."""
    amortization_seconds: float = 600.0
    """Horizon over which one-off migration / partition-rebuild costs are
    amortised when compared against steady-state miss-ratio gains."""
    min_quota_pages: int = 64
    epsilon: float = 1e-6
    """Minimum score improvement for a move to be applied."""

    def __post_init__(self) -> None:
        if self.max_steps < 0:
            raise ValueError("max steps must be non-negative")
        if self.summary_k < 1:
            raise ValueError("summary k must be at least 1")
        if self.amortization_seconds <= 0:
            raise ValueError("amortization horizon must be positive")
        if self.min_quota_pages < 1:
            raise ValueError("min quota must be at least one page")


def new_pool_id(app: str, server: str) -> str:
    return f"{NEW_POOL_PREFIX}{app}:{server}"


def split_new_pool_id(pool_id: str) -> tuple[str, str]:
    """(app, server) of a placeholder pool id."""
    app, server = pool_id[len(NEW_POOL_PREFIX):].split(":", 1)
    return app, server


@dataclass(frozen=True)
class _Move:
    """One candidate change to the planning state."""

    kind: PlanStepKind
    context_key: str | None = None
    other_key: str | None = None  # swap partner
    pool: str | None = None
    pages: int | None = None

    def key(self) -> str:
        return (
            f"{self.kind.value}|{self.context_key or ''}|"
            f"{self.other_key or ''}|{self.pool or ''}|{self.pages or 0}"
        )


@dataclass
class _State:
    """Mutable search state: who lives where, with what quota."""

    assignment: dict[str, str]
    quotas: dict[str, dict[str, int]]
    used_placeholders: set[str] = field(default_factory=set)
    released: set[str] = field(default_factory=set)
    move_cost: float = 0.0

    def clone(self) -> "_State":
        return _State(
            assignment=dict(self.assignment),
            quotas={pool: dict(q) for pool, q in self.quotas.items()},
            used_placeholders=set(self.used_placeholders),
            released=set(self.released),
            move_cost=self.move_cost,
        )


class _Planner:
    def __init__(
        self,
        snapshot: ClusterSnapshot,
        summary: WorkloadSummary,
        config: PlannerConfig,
    ) -> None:
        self.snapshot = snapshot
        self.summary = summary
        self.config = config
        self.keys = list(summary.top)
        self.amortize = config.amortization_seconds
        # Per-pool page budget net of quotas held by classes the summary
        # dropped (they keep their reservation whatever the plan does), and
        # the shared-partition demand those dropped classes still exert.
        self.base_reserved: dict[str, int] = {}
        self.extra_demand: dict[str, int] = {}
        summarised = set(self.keys)
        for pool in snapshot.pools:
            reserved = 0
            extra = 0
            quota_map = pool.quota_map()
            for key in pool.classes:
                if key in summarised:
                    continue
                if key in quota_map:
                    reserved += quota_map[key]
                else:
                    extra += self._demand_of_unsummarised(key)
            self.base_reserved[pool.engine] = reserved
            self.extra_demand[pool.engine] = extra
        # Pool sizes: existing pools as reported; placeholders inherit the
        # largest existing pool (what allocate_replica will be asked for).
        self.pool_pages: dict[str, int] = {
            pool.engine: pool.pool_pages for pool in snapshot.pools
        }
        self.placeholder_pages = max(self.pool_pages.values(), default=8192)
        # Replica count the holding cost starts from.
        self.base_replicas = sum(len(pool.replicas) for pool in snapshot.pools)

    # -- demand helpers ------------------------------------------------- #

    def _demand_of_unsummarised(self, key: str) -> int:
        try:
            state = self.snapshot.class_state(key)
        except KeyError:
            return 0
        if state.params is not None:
            return state.params.total_memory
        return 0

    def _demand_of(self, key: str) -> int:
        state = self.snapshot.class_state(key)
        if state.params is not None:
            return state.params.total_memory
        return self.summary.slices[key].max_depth

    # -- initial state --------------------------------------------------- #

    def initial_state(self) -> _State:
        assignment = {}
        for key in self.keys:
            assignment[key] = self.snapshot.class_state(key).pool
        quotas: dict[str, dict[str, int]] = {}
        for pool in self.snapshot.pools:
            quota_map = pool.quota_map()
            quotas[pool.engine] = {
                key: pages
                for key, pages in quota_map.items()
                if key in self.summary.slices
            }
        return _State(assignment=assignment, quotas=quotas)

    # -- scoring --------------------------------------------------------- #

    def pool_budget(self, pool_id: str) -> int:
        pages = self.pool_pages.get(pool_id, self.placeholder_pages)
        return pages - self.base_reserved.get(pool_id, 0)

    def assess(self, state: _State) -> ClusterAssessment:
        pools: dict[str, list[str]] = {}
        for key, pool_id in state.assignment.items():
            pools.setdefault(pool_id, []).append(key)
        assignments: dict[str, PoolAssignment] = {}
        for pool_id in sorted(pools):
            keys = sorted(pools[pool_id])
            quotas = {
                key: pages
                for key, pages in state.quotas.get(pool_id, {}).items()
                if key in pools[pool_id]
            }
            assignments[pool_id] = PoolAssignment(
                pool=pool_id,
                pool_pages=self.pool_budget(pool_id),
                curves={key: self.summary.slices[key] for key in keys},
                parameters={
                    key: params
                    for key in keys
                    if (params := self.snapshot.class_state(key).params)
                    is not None
                },
                quotas=quotas,
                demands={key: self._demand_of(key) for key in keys},
                pressures={
                    key: self.summary.pressures.get(key, 0.0) for key in keys
                },
                extra_demand=self.extra_demand.get(pool_id, 0),
            )
        return assess_cluster(assignments)

    def score(self, state: _State) -> float:
        assessment = self.assess(state)
        total_pressure = sum(self.summary.pressures.values()) or 1.0
        violation = 0.0
        for key in self.keys:
            prediction = assessment.prediction_of(key)
            if prediction is None:
                continue
            excess = max(
                0.0,
                prediction.predicted_miss_ratio
                - prediction.acceptable_miss_ratio,
            )
            violation += (
                self.summary.pressures.get(key, 0.0) / total_pressure
            ) * excess
        replicas = (
            self.base_replicas
            + len(state.used_placeholders)
            - len(state.released)
        )
        return (
            violation
            + self.config.replica_weight * replicas
            + state.move_cost
        )

    # -- move generation -------------------------------------------------- #

    def _pools_for_app(self, app: str) -> list[str]:
        """Existing pools the app has a replica in, online only."""
        return sorted(
            pool.engine
            for pool in self.snapshot.pools
            if pool.online and any(owner == app for owner, _ in pool.replicas)
        )

    def moves(self, state: _State) -> list[_Move]:
        moves: list[_Move] = []
        placeholder_apps = {
            pool_id: split_new_pool_id(pool_id)[0]
            for pool_id in state.used_placeholders
        }
        for key in self.keys:
            current = state.assignment[key]
            app = self.snapshot.class_state(key).app
            targets = [
                pool_id
                for pool_id in self._pools_for_app(app)
                if pool_id != current and pool_id not in state.released
            ]
            for server in self.snapshot.idle_servers:
                pool_id = new_pool_id(app, server)
                if pool_id != current:
                    targets.append(pool_id)
            for pool_id in state.used_placeholders:
                if pool_id != current and placeholder_apps[pool_id] == app:
                    if pool_id not in targets:
                        targets.append(pool_id)
            for pool_id in sorted(set(targets)):
                moves.append(
                    _Move(
                        kind=PlanStepKind.MIGRATE_CLASS,
                        context_key=key,
                        pool=pool_id,
                    )
                )
            # Quota candidates: the class's MRC knees inside its pool.
            params = self.snapshot.class_state(key).params
            current_quota = state.quotas.get(current, {}).get(key)
            if params is not None:
                budget = self.pool_budget(current)
                others = sum(
                    pages
                    for other, pages in state.quotas.get(current, {}).items()
                    if other != key
                )
                ceiling = budget - others - 1  # leave a shared page
                for pages in (params.acceptable_memory, params.total_memory):
                    pages = max(pages, self.config.min_quota_pages)
                    if pages > ceiling or pages == current_quota:
                        continue
                    moves.append(
                        _Move(
                            kind=PlanStepKind.SET_QUOTA,
                            context_key=key,
                            pool=current,
                            pages=pages,
                        )
                    )
            if current_quota is not None:
                moves.append(
                    _Move(
                        kind=PlanStepKind.CLEAR_QUOTA,
                        context_key=key,
                        pool=current,
                    )
                )
        # Swaps: two classes of the same app in different pools trade homes.
        for i, key_a in enumerate(self.keys):
            for key_b in self.keys[i + 1:]:
                state_a = self.snapshot.class_state(key_a)
                state_b = self.snapshot.class_state(key_b)
                if state_a.app != state_b.app:
                    continue
                if state.assignment[key_a] == state.assignment[key_b]:
                    continue
                moves.append(
                    _Move(
                        kind=PlanStepKind.MIGRATE_CLASS,
                        context_key=key_a,
                        other_key=key_b,
                    )
                )
        # Release: an online single-app pool that no longer plans any class,
        # when its application keeps at least one other pool.
        assigned_pools = set(state.assignment.values())
        for pool in self.snapshot.pools:
            if not pool.online or pool.engine in state.released:
                continue
            apps = {owner for owner, _ in pool.replicas}
            if len(apps) != 1:
                continue
            (app,) = apps
            if pool.engine in assigned_pools:
                continue
            if pool.classes and any(
                key not in self.summary.slices for key in pool.classes
            ):
                continue  # unsummarised residents still need it
            remaining = [
                p
                for p in self._pools_for_app(app)
                if p != pool.engine and p not in state.released
            ]
            if not remaining:
                continue
            moves.append(
                _Move(kind=PlanStepKind.RELEASE_REPLICA, pool=pool.engine)
            )
        return moves

    # -- move application -------------------------------------------------- #

    def apply_move(self, state: _State, move: _Move) -> _State:
        after = state.clone()
        if move.kind is PlanStepKind.MIGRATE_CLASS:
            if move.other_key is not None:  # swap
                pool_a = after.assignment[move.context_key]
                pool_b = after.assignment[move.other_key]
                after.assignment[move.context_key] = pool_b
                after.assignment[move.other_key] = pool_a
                for key, old_pool in (
                    (move.context_key, pool_a),
                    (move.other_key, pool_b),
                ):
                    after.quotas.get(old_pool, {}).pop(key, None)
                    after.move_cost += self._migration_cost(key)
            else:
                old_pool = after.assignment[move.context_key]
                after.assignment[move.context_key] = move.pool
                after.quotas.get(old_pool, {}).pop(move.context_key, None)
                if move.pool.startswith(NEW_POOL_PREFIX):
                    after.used_placeholders.add(move.pool)
                after.move_cost += self._migration_cost(move.context_key)
            # Drop placeholders no pool uses any more.
            still_used = set(after.assignment.values())
            after.used_placeholders &= still_used
        elif move.kind is PlanStepKind.SET_QUOTA:
            after.quotas.setdefault(move.pool, {})[move.context_key] = (
                move.pages
            )
            after.move_cost += self._rebuild_cost(move.pages)
        elif move.kind is PlanStepKind.CLEAR_QUOTA:
            after.quotas.get(move.pool, {}).pop(move.context_key, None)
        elif move.kind is PlanStepKind.RELEASE_REPLICA:
            after.released.add(move.pool)
        return after

    def _migration_cost(self, key: str) -> float:
        """Amortised cold-partition cost of moving one class (seconds of
        storage refill over the amortisation horizon)."""
        state = self.snapshot.class_state(key)
        pages = (
            state.params.acceptable_memory
            if state.params is not None
            else self.summary.slices[key].max_depth
        )
        return (pages * self.snapshot.io_time_per_page) / self.amortize

    def _rebuild_cost(self, pages: int) -> float:
        return (pages * self.snapshot.io_time_per_page) / self.amortize

    # -- step rendering ---------------------------------------------------- #

    def describe_move(
        self,
        move: _Move,
        before: ClusterAssessment,
        after: ClusterAssessment,
        state_after: _State,
    ) -> list[PlanStep]:
        def ratios(key: str) -> tuple[float | None, float | None]:
            b = before.prediction_of(key)
            a = after.prediction_of(key)
            return (
                b.predicted_miss_ratio if b else None,
                a.predicted_miss_ratio if a else None,
            )

        if move.kind is PlanStepKind.MIGRATE_CLASS and move.other_key:
            steps = []
            for key in (move.context_key, move.other_key):
                b, a = ratios(key)
                steps.append(
                    PlanStep(
                        kind=PlanStepKind.MIGRATE_CLASS,
                        app=self.snapshot.class_state(key).app,
                        context_key=key,
                        pool=state_after.assignment[key],
                        predicted_before=b,
                        predicted_after=a,
                        rationale="swap partner: trades pools with "
                        + (
                            move.other_key
                            if key == move.context_key
                            else move.context_key
                        ),
                    )
                )
            return steps
        app = (
            self.snapshot.class_state(move.context_key).app
            if move.context_key
            else ""
        )
        if move.kind is PlanStepKind.MIGRATE_CLASS:
            b, a = ratios(move.context_key)
            return [
                PlanStep(
                    kind=PlanStepKind.MIGRATE_CLASS,
                    app=app,
                    context_key=move.context_key,
                    pool=move.pool,
                    predicted_before=b,
                    predicted_after=a,
                    rationale="relieves contention in its current pool",
                )
            ]
        if move.kind is PlanStepKind.SET_QUOTA:
            b, a = ratios(move.context_key)
            return [
                PlanStep(
                    kind=PlanStepKind.SET_QUOTA,
                    app=app,
                    context_key=move.context_key,
                    pool=move.pool,
                    pages=move.pages,
                    predicted_before=b,
                    predicted_after=a,
                    rationale="dedicated partition caps its pool share",
                )
            ]
        if move.kind is PlanStepKind.CLEAR_QUOTA:
            b, a = ratios(move.context_key)
            return [
                PlanStep(
                    kind=PlanStepKind.CLEAR_QUOTA,
                    app=app,
                    context_key=move.context_key,
                    pool=move.pool,
                    predicted_before=b,
                    predicted_after=a,
                    rationale="quota no longer earns its reservation",
                )
            ]
        pool = self.snapshot.pool(move.pool)
        owner = sorted({owner for owner, _ in pool.replicas})[0]
        return [
            PlanStep(
                kind=PlanStepKind.RELEASE_REPLICA,
                app=owner,
                pool=move.pool,
                server=pool.server,
                rationale="pool serves no planned class",
            )
        ]


def _tie_break(seed: int, move: _Move) -> str:
    return hashlib.sha256(f"{seed}:{move.key()}".encode("utf-8")).hexdigest()


def search_plan(
    snapshot: ClusterSnapshot,
    config: PlannerConfig | None = None,
    obs: Observability | None = None,
    summary: WorkloadSummary | None = None,
) -> CapacityPlan:
    """Greedy hill-climb from the snapshot's current arrangement.

    Returns a :class:`CapacityPlan` whose content is a pure function of
    ``snapshot`` and ``config.seed``.
    """
    config = config if config is not None else PlannerConfig()
    obs = obs if obs is not None else NULL_OBS
    with obs.tracer.span(
        "planner.search", attrs={"seed": config.seed}
    ) as span:
        plan = _search(snapshot, config, summary)
        span.set_attr("steps", len(plan.steps))
        span.add_cost(len(plan.steps))
    return plan


def _search(
    snapshot: ClusterSnapshot,
    config: PlannerConfig,
    summary: WorkloadSummary | None,
) -> CapacityPlan:
    if summary is None:
        summary = WorkloadSummary.from_snapshot(
            snapshot, k=config.summary_k, points=config.slice_points
        )
    planner = _Planner(snapshot, summary, config)
    state = planner.initial_state()
    score = planner.score(state)
    score_before = score
    assessment = planner.assess(state)
    steps: list[PlanStep] = []
    notes: list[str] = []
    if summary.dropped:
        notes.append(
            f"summary dropped {len(summary.dropped)} low-pressure classes "
            f"(coverage {summary.coverage:.0%})"
        )
    for _ in range(config.max_steps):
        best: tuple[float, str, _Move, _State] | None = None
        for move in planner.moves(state):
            candidate = planner.apply_move(state, move)
            try:
                candidate_score = planner.score(candidate)
            except (ValueError, KeyError):
                continue  # over-reserved pool or other invalid arrangement
            if candidate_score >= score - config.epsilon:
                continue
            rank = (candidate_score, _tie_break(config.seed, move))
            if best is None or rank < (best[0], best[1]):
                best = (candidate_score, rank[1], move, candidate)
        if best is None:
            break
        score, _, move, state = best
        after_assessment = planner.assess(state)
        steps.extend(
            planner.describe_move(move, assessment, after_assessment, state)
        )
        assessment = after_assessment
    # Materialise placeholder pools as ADD_REPLICA steps, ahead of the
    # migrations that target them.
    add_steps = [
        PlanStep(
            kind=PlanStepKind.ADD_REPLICA,
            app=split_new_pool_id(pool_id)[0],
            pool=pool_id,
            server=split_new_pool_id(pool_id)[1],
            rationale="idle server absorbs migrated classes",
        )
        for pool_id in sorted(state.used_placeholders)
    ]
    release_steps = [
        PlanStep(
            kind=PlanStepKind.RELEASE_REPLICA,
            app=step.app,
            pool=step.pool,
            server=step.server,
            rationale=step.rationale,
        )
        for step in steps
        if step.kind is PlanStepKind.RELEASE_REPLICA
    ]
    ordered = (
        add_steps
        + [s for s in steps if s.kind is not PlanStepKind.RELEASE_REPLICA]
        + release_steps
    )
    outlooks = []
    for key in sorted(summary.top):
        prediction = assessment.prediction_of(key)
        if prediction is None:
            continue
        outlooks.append(
            ClassOutlook(
                context_key=key,
                pool=state.assignment[key],
                memory_pages=prediction.memory_pages,
                predicted_miss_ratio=prediction.predicted_miss_ratio,
                acceptable_miss_ratio=prediction.acceptable_miss_ratio,
            )
        )
    return CapacityPlan(
        seed=config.seed,
        interval_index=snapshot.interval_index,
        score_before=score_before,
        score_after=score,
        steps=tuple(ordered),
        outlooks=tuple(outlooks),
        coverage=summary.coverage,
        notes=tuple(notes),
    )
