"""Global capacity planner: snapshot -> search -> plan -> validate.

The per-server primitives (MRC analysis, the quota heuristic, the
scheduler's class placement, the resource manager's replica pool) decide
one server at a time.  This package turns them into a cluster-wide what-if
planner: :func:`build_snapshot` freezes the cluster into pure data,
:func:`search_plan` hill-climbs over candidate moves scored by the
cluster-scope advisor, the result is an explainable
:class:`CapacityPlan`, and :func:`validate_plan` replays it in a forked
harness to compare predicted miss ratios against simulated ones.

Enabled in the controller with ``ControllerConfig(use_planner=True)``;
with the flag off (the default) nothing in this package is imported.
"""

from .model import (
    AppState,
    ClassState,
    ClusterSnapshot,
    CurveSlice,
    PoolState,
    WorkloadSummary,
    build_snapshot,
)
from .plan import CapacityPlan, ClassOutlook, PlanStep, PlanStepKind
from .search import PlannerConfig, search_plan
from .validate import ClassCheck, PlanValidation, validate_plan

__all__ = [
    "AppState",
    "CapacityPlan",
    "ClassCheck",
    "ClassOutlook",
    "ClassState",
    "ClusterSnapshot",
    "CurveSlice",
    "PlanStep",
    "PlanStepKind",
    "PlanValidation",
    "PlannerConfig",
    "PoolState",
    "WorkloadSummary",
    "build_snapshot",
    "search_plan",
    "validate_plan",
]
