"""Pure-data cluster state for the capacity planner.

The planner never touches live objects while searching: it plans against a
:class:`ClusterSnapshot` — per-class MRC parameters and stored curves,
per-pool sizes and quotas, current placements, SLA/violation state and
replica health — assembled once from the analyzer/scheduler/resource-manager
state by :func:`build_snapshot`, plus a compact :class:`WorkloadSummary`
(the top-k classes by page pressure, each with a sampled
:class:`CurveSlice`) so the cost of evaluating a candidate plan is
independent of trace length.

Planning-model approximations, stated once:

* a class is assigned to **one** pool — the first replica of its current
  placement.  Read-balanced classes replicate their working set on every
  replica they touch, so a one-pool residency model neither over- nor
  under-counts memory by much, and every *move* the planner emits pins the
  class to a single replica anyway (that is the paper's reschedule action);
* curve slices are step functions sampled on a geometric grid plus the two
  MRC knees; lookups round *down* to the nearest sample, so predicted miss
  ratios err pessimistic (never promise memory the curve cannot back).
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field

from ..core.metrics import Metric
from ..core.mrc import MRCParameters
from ..obs import NULL_OBS, Observability

__all__ = [
    "CurveSlice",
    "ClassState",
    "PoolState",
    "AppState",
    "ClusterSnapshot",
    "WorkloadSummary",
    "build_snapshot",
]


@dataclass(frozen=True)
class CurveSlice:
    """A sampled miss-ratio curve: step-function stand-in for the real MRC.

    ``sizes`` is strictly ascending (first entry 1); ``miss_ratios`` the
    curve value at each size.  ``miss_ratio(pages)`` returns the value at
    the largest sampled size not exceeding ``pages`` — an upper bound on
    the true (non-increasing) curve, so planning on slices is conservative.
    """

    sizes: tuple[int, ...]
    miss_ratios: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.sizes) != len(self.miss_ratios) or not self.sizes:
            raise ValueError("slice needs matching, non-empty samples")
        if any(b <= a for a, b in zip(self.sizes, self.sizes[1:])):
            raise ValueError("slice sizes must be strictly ascending")

    @property
    def max_depth(self) -> int:
        return self.sizes[-1]

    def miss_ratio(self, pages: int) -> float:
        if pages < 0:
            raise ValueError(f"memory size must be non-negative: {pages}")
        index = bisect_right(self.sizes, pages) - 1
        if index < 0:
            return 1.0  # below the smallest sample: assume everything misses
        return self.miss_ratios[index]

    @classmethod
    def from_curve(
        cls,
        curve,
        max_pages: int,
        points: int = 24,
        knees: tuple[int, ...] = (),
    ) -> "CurveSlice":
        """Sample ``curve`` on a geometric grid of ``points`` sizes up to
        ``max_pages``, always including 1, ``max_pages`` and the ``knees``
        (the MRC's acceptable/total memory, where exactness matters most).
        """
        if max_pages < 1:
            raise ValueError(f"max pages must be positive: {max_pages}")
        sizes = {1, max_pages}
        ratio = max_pages ** (1.0 / max(points - 1, 1))
        size = 1.0
        for _ in range(points):
            sizes.add(min(max_pages, max(1, int(round(size)))))
            size *= ratio
        for knee in knees:
            if 1 <= knee <= max_pages:
                sizes.add(int(knee))
        ordered = tuple(sorted(sizes))
        return cls(
            sizes=ordered,
            miss_ratios=tuple(curve.miss_ratio(s) for s in ordered),
        )


@dataclass(frozen=True)
class ClassState:
    """One query class as the planner sees it."""

    context_key: str
    app: str
    pool: str
    """Engine the class is planned-resident on (first placed replica's)."""
    placement: tuple[str, ...]
    """Replica names the class is currently routed to."""
    pressure: float
    """Page accesses per second over the last trustworthy interval."""
    params: MRCParameters | None = None
    status: str = "stable"
    """``assess_recent_behaviour`` verdict for diagnosis candidates
    (``new``/``changed``/``unchanged``/...), ``stable`` otherwise."""

    @property
    def suspect(self) -> bool:
        return self.status in ("new", "changed")


@dataclass(frozen=True)
class PoolState:
    """One buffer pool (= one database engine) and what lives in it."""

    engine: str
    server: str
    pool_pages: int
    online: bool
    quotas: tuple[tuple[str, int], ...]
    replicas: tuple[tuple[str, str], ...]
    """(app, replica name) pairs served by this engine, sorted."""
    classes: tuple[str, ...]
    """Context keys planned-resident here, sorted."""

    def quota_map(self) -> dict[str, int]:
        return dict(self.quotas)


@dataclass(frozen=True)
class AppState:
    """One application's SLA standing at the planning instant."""

    app: str
    sla_latency: float
    sla_met: bool
    violation_streak: int
    mean_latency: float
    throughput: float
    replicas: tuple[str, ...]


@dataclass(frozen=True)
class ClusterSnapshot:
    """Everything the planner needs, detached from the live cluster."""

    interval_index: int
    interval_length: float
    apps: tuple[AppState, ...]
    pools: tuple[PoolState, ...]
    classes: tuple[ClassState, ...]
    idle_servers: tuple[str, ...]
    io_time_per_page: float
    curves: dict[str, object] = field(default_factory=dict, repr=False)
    """Stored miss-ratio curves by context key (not part of equality)."""

    def __post_init__(self) -> None:
        keys = [c.context_key for c in self.classes]
        if len(keys) != len(set(keys)):
            raise ValueError("duplicate context keys in snapshot")

    # -- lookups ------------------------------------------------------- #

    def app_state(self, app: str) -> AppState:
        for state in self.apps:
            if state.app == app:
                return state
        raise KeyError(f"no app {app!r} in snapshot")

    def pool(self, engine: str) -> PoolState:
        for state in self.pools:
            if state.engine == engine:
                return state
        raise KeyError(f"no pool {engine!r} in snapshot")

    def class_state(self, context_key: str) -> ClassState:
        for state in self.classes:
            if state.context_key == context_key:
                return state
        raise KeyError(f"no class {context_key!r} in snapshot")

    def classes_on(self, engine: str) -> list[ClassState]:
        return [c for c in self.classes if c.pool == engine]

    def pools_of_app(self, app: str) -> list[PoolState]:
        return [
            pool
            for pool in self.pools
            if any(owner == app for owner, _ in pool.replicas)
        ]

    def replica_pool(self, replica: str) -> PoolState:
        for pool in self.pools:
            if any(name == replica for _, name in pool.replicas):
                return pool
        raise KeyError(f"no pool hosts replica {replica!r}")

    def violated_apps(self) -> list[str]:
        return [a.app for a in self.apps if not a.sla_met]


@dataclass(frozen=True)
class WorkloadSummary:
    """Top-k classes by page pressure, with sampled curve slices.

    The planner scores candidate moves against this summary only, so one
    search step costs O(k · pools) slice lookups no matter how long the
    underlying traces were.  ``coverage`` reports the pressure fraction the
    summary captures; ``dropped`` names the classes it does not.
    """

    top: tuple[str, ...]
    slices: dict[str, CurveSlice] = field(default_factory=dict, repr=False)
    pressures: dict[str, float] = field(default_factory=dict, repr=False)
    coverage: float = 1.0
    dropped: tuple[str, ...] = ()

    @classmethod
    def from_snapshot(
        cls,
        snapshot: ClusterSnapshot,
        k: int = 12,
        points: int = 24,
    ) -> "WorkloadSummary":
        """Summarise the snapshot's classes that have a stored curve."""
        with_curves = [
            c for c in snapshot.classes if c.context_key in snapshot.curves
        ]
        ranked = sorted(
            with_curves, key=lambda c: (-c.pressure, c.context_key)
        )
        kept = ranked[: max(k, 0)]
        dropped = tuple(c.context_key for c in ranked[len(kept):])
        max_pages = max((p.pool_pages for p in snapshot.pools), default=1)
        slices: dict[str, CurveSlice] = {}
        for state in kept:
            knees: tuple[int, ...] = ()
            if state.params is not None:
                knees = (
                    state.params.acceptable_memory,
                    state.params.total_memory,
                )
            slices[state.context_key] = CurveSlice.from_curve(
                snapshot.curves[state.context_key],
                max_pages=max_pages,
                points=points,
                knees=knees,
            )
        total = sum(c.pressure for c in snapshot.classes) or 1.0
        covered = sum(c.pressure for c in kept)
        return cls(
            top=tuple(c.context_key for c in kept),
            slices=slices,
            pressures={c.context_key: c.pressure for c in kept},
            coverage=covered / total,
            dropped=dropped,
        )


def _app_of(context_key: str) -> str:
    return context_key.split("/", 1)[0]


def build_snapshot(
    controller,
    app: str | None = None,
    obs: Observability | None = None,
    diagnose_candidates: bool = True,
) -> ClusterSnapshot:
    """Assemble a :class:`ClusterSnapshot` from a live controller.

    ``app`` names the violated application whose candidate classes get the
    diagnosis-grade treatment (outliers/top-k/new classes re-assessed via
    ``assess_recent_behaviour``, exactly like the single-server path);
    every other class contributes its stored curve as-is, or a fresh
    initial MRC when its window is long enough.  With ``app=None`` (the
    CLI's whole-cluster view) no class is marked suspect.
    """
    obs = obs if obs is not None else getattr(controller, "obs", NULL_OBS)
    with obs.tracer.span(
        "planner.snapshot", attrs={"app": app or "*"}
    ) as span:
        snapshot = _assemble(controller, app, diagnose_candidates)
        span.set_attr("classes", len(snapshot.classes))
        span.set_attr("pools", len(snapshot.pools))
    return snapshot


def _assemble(
    controller, app: str | None, diagnose_candidates: bool
) -> ClusterSnapshot:
    config = controller.config
    diagnosis = config.diagnosis

    # Per-engine raw facts, one pass over the analyzers.
    engines: dict[str, dict] = {}
    per_class: dict[str, dict] = {}
    for analyzer in controller.analyzers():
        engine = analyzer.engine
        info = engines.setdefault(
            engine.name,
            {
                "server": analyzer.server_name,
                "pool_pages": engine.pool_pages,
                "quotas": engine.quotas,
                "replicas": set(),
            },
        )
        candidates: set[str] = set()
        if app is not None and diagnose_candidates:
            report = analyzer.detect(app)
            candidates.update(report.outlier_contexts())
            candidates.update(
                analyzer.heavyweight_contexts(app, k=diagnosis.top_k)
            )
            candidates.update(
                analyzer.new_contexts(None, diagnosis.new_class_horizon)
            )
        vectors = analyzer.effective_vectors()
        contexts = set(analyzer.mrc.contexts()) | set(vectors) | candidates
        for key in sorted(contexts):
            entry = per_class.setdefault(
                key, {"pressure": 0.0, "params": None, "curve": None,
                      "status": "stable", "engines": []}
            )
            entry["engines"].append(engine.name)
            vector = vectors.get(key)
            if vector is not None:
                entry["pressure"] += vector.values.get(
                    Metric.PAGE_ACCESSES, 0.0
                )
            if key in candidates:
                status, params = analyzer.assess_recent_behaviour(
                    key,
                    diagnosis.mrc_change_threshold,
                    new_class_horizon=diagnosis.new_class_horizon,
                )
                if params is not None:
                    entry["status"] = status
            else:
                analyzer.ensure_mrc(key)
            if analyzer.mrc.has(key):
                entry["params"] = analyzer.mrc.parameters_of(key)
                entry["curve"] = analyzer.mrc.curve_of(key)
        info["online"] = True

    # Replica topology + app SLA standing from the schedulers.
    placements: dict[str, tuple[str, ...]] = {}
    replica_engine: dict[str, str] = {}
    apps: list[AppState] = []
    last_report: dict[str, object] = {}
    for report in controller.reports:
        last_report[report.app] = report
    for name in sorted(controller.schedulers):
        scheduler = controller.schedulers[name]
        replica_names = scheduler.replica_names()
        for replica_name in replica_names:
            replica = scheduler.replicas[replica_name]
            engine_name = replica.engine.name
            replica_engine[replica_name] = engine_name
            info = engines.get(engine_name)
            if info is not None:
                info["replicas"].add((name, replica_name))
        for key in per_class:
            if _app_of(key) == name:
                placements[key] = tuple(scheduler.placement_of(key))
        streak = controller.violation_streak(name)
        report = last_report.get(name)
        apps.append(
            AppState(
                app=name,
                sla_latency=scheduler.sla_latency,
                sla_met=streak == 0,
                violation_streak=streak,
                mean_latency=getattr(report, "mean_latency", 0.0),
                throughput=getattr(report, "throughput", 0.0),
                replicas=tuple(replica_names),
            )
        )

    pools = []
    for engine_name in sorted(engines):
        info = engines[engine_name]
        replicas = tuple(sorted(info["replicas"]))
        online = False
        for scheduler in controller.schedulers.values():
            for replica in scheduler.replicas.values():
                if replica.engine.name == engine_name and replica.online:
                    online = True
        pools.append(
            PoolState(
                engine=engine_name,
                server=info["server"],
                pool_pages=info["pool_pages"],
                online=online,
                quotas=tuple(sorted(info["quotas"].items())),
                replicas=replicas,
                classes=(),  # filled below once residency is known
            )
        )

    classes = []
    curves: dict[str, object] = {}
    resident: dict[str, list[str]] = {p.engine: [] for p in pools}
    for key in sorted(per_class):
        entry = per_class[key]
        placement = placements.get(key, ())
        home = None
        for replica_name in placement:
            engine_name = replica_engine.get(replica_name)
            if engine_name in resident:
                home = engine_name
                break
        if home is None:
            home = sorted(entry["engines"])[0] if entry["engines"] else ""
        if home in resident:
            resident[home].append(key)
        classes.append(
            ClassState(
                context_key=key,
                app=_app_of(key),
                pool=home,
                placement=placement,
                pressure=entry["pressure"],
                params=entry["params"],
                status=entry["status"],
            )
        )
        if entry["curve"] is not None:
            curves[key] = entry["curve"]

    pools = [
        PoolState(
            engine=pool.engine,
            server=pool.server,
            pool_pages=pool.pool_pages,
            online=pool.online,
            quotas=pool.quotas,
            replicas=pool.replicas,
            classes=tuple(sorted(resident.get(pool.engine, ()))),
        )
        for pool in pools
    ]

    manager = controller.resource_manager
    return ClusterSnapshot(
        interval_index=controller.interval_index,
        interval_length=config.interval_length,
        apps=tuple(apps),
        pools=tuple(pools),
        classes=tuple(classes),
        idle_servers=tuple(manager.idle_servers()),
        io_time_per_page=manager.cost_model.io_time_per_page,
        curves=curves,
    )
