"""The planner's output artefact: a ranked, explainable capacity plan.

A :class:`CapacityPlan` is an *ordered* list of :class:`PlanStep`\\ s —
replica additions first (they create the pools later steps target), then
migrations, then quota changes — each carrying the predicted miss-ratio
delta that justified it and a one-line human rationale.  The plan is pure
data: rendering, hashing (`digest`) and JSON export live here; applying it
to a live cluster is the controller's job (``ClusterController.apply_plan``)
and replaying it in a forked harness is :mod:`repro.planner.validate`'s.

Determinism contract: the plan's ``canonical_json()`` depends only on the
input :class:`~repro.planner.model.ClusterSnapshot` and the planner seed,
so ``digest()`` is a stable fingerprint — the golden-hash test pins it.
"""

from __future__ import annotations

import enum
import hashlib
import json
from dataclasses import dataclass, field

__all__ = ["PlanStepKind", "PlanStep", "ClassOutlook", "CapacityPlan"]


class PlanStepKind(enum.Enum):
    ADD_REPLICA = "add_replica"
    RELEASE_REPLICA = "release_replica"
    MIGRATE_CLASS = "migrate_class"
    SET_QUOTA = "set_quota"
    CLEAR_QUOTA = "clear_quota"


# Application order: structural steps first so later steps can reference
# the pools they create, memory tuning last.
_KIND_ORDER = {
    PlanStepKind.ADD_REPLICA: 0,
    PlanStepKind.RELEASE_REPLICA: 1,
    PlanStepKind.MIGRATE_CLASS: 2,
    PlanStepKind.CLEAR_QUOTA: 3,
    PlanStepKind.SET_QUOTA: 4,
}


@dataclass(frozen=True)
class PlanStep:
    """One actuatable change, with the prediction that justified it."""

    kind: PlanStepKind
    app: str
    context_key: str | None = None
    pool: str | None = None
    """Target pool (engine name, or ``new:<server>`` for a pool that an
    earlier ADD_REPLICA step of this plan creates)."""
    server: str | None = None
    pages: int | None = None
    predicted_before: float | None = None
    predicted_after: float | None = None
    rationale: str = ""

    @property
    def order_key(self) -> tuple:
        return (
            _KIND_ORDER[self.kind],
            self.app,
            self.context_key or "",
            self.pool or "",
        )

    def to_jsonable(self) -> dict:
        return {
            "kind": self.kind.value,
            "app": self.app,
            "context_key": self.context_key,
            "pool": self.pool,
            "server": self.server,
            "pages": self.pages,
            "predicted_before": self.predicted_before,
            "predicted_after": self.predicted_after,
            "rationale": self.rationale,
        }

    def describe(self) -> str:
        delta = ""
        if self.predicted_before is not None and self.predicted_after is not None:
            delta = (
                f" (miss {self.predicted_before:.3f} -> "
                f"{self.predicted_after:.3f})"
            )
        if self.kind is PlanStepKind.ADD_REPLICA:
            where = f" on {self.server}" if self.server else ""
            return f"add replica for {self.app}{where}: {self.rationale}"
        if self.kind is PlanStepKind.RELEASE_REPLICA:
            return f"release replica {self.pool} of {self.app}: {self.rationale}"
        if self.kind is PlanStepKind.MIGRATE_CLASS:
            return (
                f"migrate {self.context_key} to {self.pool}{delta}: "
                f"{self.rationale}"
            )
        if self.kind is PlanStepKind.SET_QUOTA:
            return (
                f"quota {self.context_key} = {self.pages} pages on "
                f"{self.pool}{delta}: {self.rationale}"
            )
        return f"clear quota of {self.context_key} on {self.pool}: {self.rationale}"


@dataclass(frozen=True)
class ClassOutlook:
    """Before/after prediction for one class under the plan."""

    context_key: str
    pool: str
    memory_pages: int
    predicted_miss_ratio: float
    acceptable_miss_ratio: float

    @property
    def meets_acceptable(self) -> bool:
        return self.predicted_miss_ratio <= self.acceptable_miss_ratio + 1e-9

    def to_jsonable(self) -> dict:
        return {
            "context_key": self.context_key,
            "pool": self.pool,
            "memory_pages": self.memory_pages,
            "predicted_miss_ratio": round(self.predicted_miss_ratio, 9),
            "acceptable_miss_ratio": round(self.acceptable_miss_ratio, 9),
        }


@dataclass(frozen=True)
class CapacityPlan:
    """A full, ordered capacity plan for the cluster."""

    seed: int
    interval_index: int
    score_before: float
    score_after: float
    steps: tuple[PlanStep, ...] = ()
    outlooks: tuple[ClassOutlook, ...] = ()
    """Post-plan prediction for every summarised class, sorted by key."""
    coverage: float = 1.0
    """Pressure fraction of the workload the planning summary captured."""
    notes: tuple[str, ...] = field(default=())

    @property
    def empty(self) -> bool:
        return not self.steps

    @property
    def improvement(self) -> float:
        return self.score_before - self.score_after

    def quota_steps(self) -> list[PlanStep]:
        return [
            s
            for s in self.steps
            if s.kind in (PlanStepKind.SET_QUOTA, PlanStepKind.CLEAR_QUOTA)
        ]

    def to_jsonable(self) -> dict:
        return {
            "seed": self.seed,
            "interval_index": self.interval_index,
            "score_before": round(self.score_before, 9),
            "score_after": round(self.score_after, 9),
            "coverage": round(self.coverage, 9),
            "steps": [step.to_jsonable() for step in self.steps],
            "outlooks": [o.to_jsonable() for o in self.outlooks],
            "notes": list(self.notes),
        }

    def canonical_json(self) -> str:
        return json.dumps(
            self.to_jsonable(), sort_keys=True, separators=(",", ":")
        )

    def digest(self) -> str:
        """Stable fingerprint of the plan (determinism golden)."""
        return hashlib.sha256(self.canonical_json().encode("utf-8")).hexdigest()

    def render(self) -> str:
        lines = [
            f"capacity plan @ interval {self.interval_index} "
            f"(seed {self.seed})",
            f"  score: {self.score_before:.4f} -> {self.score_after:.4f} "
            f"(improvement {self.improvement:+.4f}), "
            f"summary coverage {self.coverage:.0%}",
        ]
        if not self.steps:
            lines.append("  no steps: current configuration is locally optimal")
        for index, step in enumerate(self.steps, start=1):
            lines.append(f"  {index}. {step.describe()}")
        failing = [o for o in self.outlooks if not o.meets_acceptable]
        if failing:
            lines.append("  still above acceptable after the plan:")
            for outlook in failing:
                lines.append(
                    f"    - {outlook.context_key} on {outlook.pool}: "
                    f"{outlook.predicted_miss_ratio:.3f} > "
                    f"{outlook.acceptable_miss_ratio:.3f}"
                )
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)
