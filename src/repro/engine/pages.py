"""Page-id spaces for the simulated storage engine.

The engine addresses storage as fixed-size pages (16 KiB, matching InnoDB).
Each table and each index receives a contiguous, non-overlapping range of
page ids from a per-database :class:`PageSpaceAllocator`, so a page id alone
identifies which object (and which database) it belongs to.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["PAGE_SIZE_BYTES", "pages_for_bytes", "PageRange", "PageSpaceAllocator"]

PAGE_SIZE_BYTES = 16 * 1024
"""Bytes per page (InnoDB default)."""


def pages_for_bytes(num_bytes: int) -> int:
    """Number of pages needed to hold ``num_bytes`` (rounded up, at least 1)."""
    if num_bytes < 0:
        raise ValueError(f"byte count must be non-negative: {num_bytes}")
    return max(1, -(-num_bytes // PAGE_SIZE_BYTES))


@dataclass(frozen=True)
class PageRange:
    """A contiguous, half-open range of page ids ``[start, start + count)``."""

    name: str
    start: int
    count: int

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise ValueError(f"page range {self.name!r} must be non-empty")
        if self.start < 0:
            raise ValueError(f"page range {self.name!r} has negative start")

    @property
    def end(self) -> int:
        """One past the last page id."""
        return self.start + self.count

    def page(self, offset: int) -> int:
        """The page id at ``offset`` within the range."""
        if not 0 <= offset < self.count:
            raise IndexError(
                f"offset {offset} outside range {self.name!r} of {self.count} pages"
            )
        return self.start + offset

    def page_array(self, offsets: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`page`: page ids for a whole offset vector."""
        if len(offsets) and (
            int(offsets.min()) < 0 or int(offsets.max()) >= self.count
        ):
            raise IndexError(
                f"offsets outside range {self.name!r} of {self.count} pages"
            )
        return self.start + offsets.astype(np.int64, copy=False)

    def contains(self, page_id: int) -> bool:
        return self.start <= page_id < self.end

    def slice(self, offset: int, count: int) -> list[int]:
        """``count`` consecutive page ids starting at ``offset``, clipped."""
        if offset < 0:
            raise IndexError(f"negative offset {offset}")
        stop = min(offset + count, self.count)
        return list(range(self.start + offset, self.start + stop))


class PageSpaceAllocator:
    """Hands out non-overlapping :class:`PageRange` blocks.

    Databases on different replicas use different allocator *bases* so that
    page ids never collide across engines sharing a buffer-pool simulation.
    """

    def __init__(self, base: int = 0) -> None:
        if base < 0:
            raise ValueError(f"allocator base must be non-negative: {base}")
        self._next = base
        self._ranges: dict[str, PageRange] = {}

    def allocate(self, name: str, count: int) -> PageRange:
        """Allocate ``count`` pages under ``name``; names must be unique."""
        if name in self._ranges:
            raise ValueError(f"page range {name!r} already allocated")
        page_range = PageRange(name=name, start=self._next, count=count)
        self._next += count
        self._ranges[name] = page_range
        return page_range

    def get(self, name: str) -> PageRange:
        try:
            return self._ranges[name]
        except KeyError:
            raise KeyError(f"no page range named {name!r}") from None

    def owner_of(self, page_id: int) -> PageRange | None:
        """The range containing ``page_id``, or ``None`` if unallocated."""
        for page_range in self._ranges.values():
            if page_range.contains(page_id):
                return page_range
        return None

    @property
    def total_pages(self) -> int:
        """Total pages allocated so far."""
        return sum(r.count for r in self._ranges.values())

    def ranges(self) -> list[PageRange]:
        return list(self._ranges.values())
