"""Lightweight per-query-class statistics logging.

The paper instruments MySQL so that each worker thread logs into a *private*
buffer (avoiding lock contention) which is flushed to the engine-level log
when full or at thread shutdown.  Per query class the engine tracks: latency,
throughput, buffer-pool misses, page accesses, I/O block requests, read-ahead
requests, and a window of the most recent page accesses.

This module reproduces that pipeline:

* :class:`ThreadLogBuffer` — the private, lock-free per-thread buffer,
* :class:`EngineLog` — the per-engine sink aggregating flushed records into
  per-interval, per-class accumulators and per-class access windows, and
* :class:`ClassIntervalStats` — the aggregate handed to the log analyzer at
  each measurement-interval boundary.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from ..sim.trace import AccessWindow

__all__ = ["ExecutionRecord", "ClassIntervalStats", "ThreadLogBuffer", "EngineLog"]


@dataclass(frozen=True)
class ExecutionRecord:
    """One query execution as seen by the instrumentation layer."""

    timestamp: float
    context_key: str
    latency: float
    page_accesses: int
    misses: int
    readaheads: int
    io_block_requests: int
    pages: Sequence[int] = ()
    lock_waits: int = 0
    lock_wait_time: float = 0.0


@dataclass
class ClassIntervalStats:
    """Per-query-class accumulator over one measurement interval."""

    context_key: str
    executions: int = 0
    total_latency: float = 0.0
    page_accesses: int = 0
    misses: int = 0
    readaheads: int = 0
    io_block_requests: int = 0
    lock_waits: int = 0
    lock_wait_time: float = 0.0

    def absorb(self, record: ExecutionRecord) -> None:
        self.executions += 1
        self.total_latency += record.latency
        self.page_accesses += record.page_accesses
        self.misses += record.misses
        self.readaheads += record.readaheads
        self.io_block_requests += record.io_block_requests
        self.lock_waits += record.lock_waits
        self.lock_wait_time += record.lock_wait_time

    @property
    def mean_latency(self) -> float:
        return self.total_latency / self.executions if self.executions else 0.0

    def throughput(self, interval_length: float) -> float:
        if interval_length <= 0:
            raise ValueError(f"interval length must be positive: {interval_length}")
        return self.executions / interval_length

    @property
    def miss_ratio(self) -> float:
        return self.misses / self.page_accesses if self.page_accesses else 0.0


class ThreadLogBuffer:
    """A private, fixed-capacity log buffer owned by one worker thread.

    Records accumulate locally and reach the shared :class:`EngineLog` only
    on flush — when the buffer fills or the thread shuts down — mirroring the
    paper's no-locking instrumentation design.
    """

    def __init__(self, sink: "EngineLog", capacity: int = 256) -> None:
        if capacity <= 0:
            raise ValueError(f"buffer capacity must be positive: {capacity}")
        self._sink = sink
        self.capacity = capacity
        self._records: list[ExecutionRecord] = []
        self.flushes = 0

    def __len__(self) -> int:
        return len(self._records)

    def log(self, record: ExecutionRecord) -> None:
        self._records.append(record)
        if len(self._records) >= self.capacity:
            self.flush()

    def flush(self) -> int:
        """Push buffered records to the engine log; returns count flushed."""
        flushed = len(self._records)
        if flushed:
            self._sink.ingest(self._records)
            self._records = []
            self.flushes += 1
        return flushed

    def shutdown(self) -> None:
        """Thread exit: flush whatever remains."""
        self.flush()


class EngineLog:
    """Per-engine statistics sink and per-class recent-access windows."""

    def __init__(self, window_capacity: int = 200_000) -> None:
        self.window_capacity = window_capacity
        self._current: dict[str, ClassIntervalStats] = {}
        self._windows: dict[str, AccessWindow] = {}
        self.records_ingested = 0

    def ingest(self, records: list[ExecutionRecord]) -> None:
        """Absorb a flushed thread buffer (counter aggregation only).

        Page-access windows are *not* fed here: thread buffers flush in
        batches, which would scramble the global access order and corrupt
        reuse distances.  The engine records windows synchronously at
        execution time via :meth:`record_window`.
        """
        for record in records:
            stats = self._current.get(record.context_key)
            if stats is None:
                stats = ClassIntervalStats(record.context_key)
                self._current[record.context_key] = stats
            stats.absorb(record)
        self.records_ingested += len(records)

    def record_window(
        self, context_key: str, pages: Sequence[int] | np.ndarray
    ) -> None:
        """Append one execution's demand pages to the context's window, in
        true execution order.  Accepts any page vector — list, tuple, or
        ndarray — and hands it to the window in one call."""
        if len(pages):
            self.window_for(context_key).record_many(pages)

    def window_for(self, context_key: str) -> AccessWindow:
        """The recent-page-access window of one query context."""
        window = self._windows.get(context_key)
        if window is None:
            window = AccessWindow(self.window_capacity)
            self._windows[context_key] = window
        return window

    def has_window(self, context_key: str) -> bool:
        return context_key in self._windows and len(self._windows[context_key]) > 0

    def interval_snapshot(self) -> dict[str, ClassIntervalStats]:
        """Return and reset the per-class accumulators for the ending interval.

        Access windows are *not* reset: the MRC tracker wants continuity of
        recent history across intervals.
        """
        snapshot = self._current
        self._current = {}
        return snapshot

    def peek(self) -> dict[str, ClassIntervalStats]:
        """Current accumulators without resetting (for mid-interval checks)."""
        return dict(self._current)

    def context_keys(self) -> list[str]:
        return sorted(set(self._current) | set(self._windows))
