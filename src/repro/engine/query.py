"""Query classes, templates and instances.

The paper's scheduling unit is the *query class*: "all query instances of an
application with the same query template but different arguments", with the
scheduler determining templates on the fly.  This module provides

* template normalisation (literal stripping) so instances map to classes,
* :class:`QueryClass` — the unit the whole system schedules, monitors and
  retunes, bundling an access pattern with a CPU cost model, and
* :class:`QueryClassRegistry` — the scheduler-side on-the-fly template
  catalogue.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from .access import AccessPattern, ExecutionAccess

__all__ = [
    "normalize_template",
    "QueryClass",
    "QueryInstance",
    "QueryClassRegistry",
]

_STRING_LITERAL = re.compile(r"'(?:[^'\\]|\\.)*'")
_NUMBER_LITERAL = re.compile(r"\b\d+(?:\.\d+)?\b")
_IN_LIST = re.compile(r"\(\s*\?(?:\s*,\s*\?)+\s*\)")
_WHITESPACE = re.compile(r"\s+")


def normalize_template(sql: str) -> str:
    """Reduce a SQL statement to its template.

    String and numeric literals become ``?`` placeholders, ``IN`` lists of
    placeholders collapse to ``(?)`` (so varying list lengths share one
    class), and whitespace/case are canonicalised.

    >>> normalize_template("SELECT * FROM item WHERE i_id = 42")
    'select * from item where i_id = ?'
    """
    template = _STRING_LITERAL.sub("?", sql)
    template = _NUMBER_LITERAL.sub("?", template)
    template = _IN_LIST.sub("(?)", template)
    template = _WHITESPACE.sub(" ", template).strip()
    return template.lower()


@dataclass
class QueryClass:
    """One query template of one application, with its execution behaviour.

    ``cpu_cost`` is the CPU-seconds one execution consumes on an unloaded
    core; per-page I/O costs come from the buffer pool and the server's I/O
    model, not from here.
    """

    name: str
    app: str
    query_id: int
    template: str
    pattern: AccessPattern
    cpu_cost: float = 0.004
    is_write: bool = False
    lock_pattern: object | None = None  # a locks.RowGroupLockPattern

    def __post_init__(self) -> None:
        if self.cpu_cost < 0:
            raise ValueError(f"cpu cost must be non-negative: {self.cpu_cost}")

    @property
    def context_key(self) -> str:
        """Globally unique identifier of this query context."""
        return f"{self.app}/{self.name}"

    def execute_pages(self) -> ExecutionAccess:
        """Page references of one execution (delegates to the pattern)."""
        return self.pattern.pages_for_execution()

    def footprint_pages(self) -> int:
        return self.pattern.footprint_pages()


@dataclass
class QueryInstance:
    """One concrete query: an application name, SQL text and arrival time."""

    app: str
    sql: str
    arrival: float = 0.0
    template: str = field(init=False)

    def __post_init__(self) -> None:
        self.template = normalize_template(self.sql)


class QueryClassRegistry:
    """Maps templates to query classes, one registry per application.

    Pre-registered classes (the workload definitions) are matched by
    template.  Unknown templates are *discovered*: a fresh class is minted on
    first sight, mirroring the paper's scheduler which "determines the query
    templates of each application on the fly".  Discovered classes get a
    do-nothing access pattern until the caller binds one.
    """

    def __init__(self, app: str) -> None:
        self.app = app
        self._by_template: dict[str, QueryClass] = {}
        self._by_name: dict[str, QueryClass] = {}
        self._next_discovered_id = 1000

    def register(self, query_class: QueryClass) -> None:
        if query_class.app != self.app:
            raise ValueError(
                f"class {query_class.name!r} belongs to app {query_class.app!r}, "
                f"not {self.app!r}"
            )
        if query_class.name in self._by_name:
            raise ValueError(f"query class {query_class.name!r} already registered")
        if query_class.template in self._by_template:
            raise ValueError(
                f"template already registered: {query_class.template!r}"
            )
        self._by_template[query_class.template] = query_class
        self._by_name[query_class.name] = query_class

    def classify(self, instance: QueryInstance) -> QueryClass:
        """Resolve an instance to its class, discovering new templates."""
        known = self._by_template.get(instance.template)
        if known is not None:
            return known
        return self._discover(instance.template)

    def _discover(self, template: str) -> QueryClass:
        name = f"discovered_{self._next_discovered_id}"
        query_class = QueryClass(
            name=name,
            app=self.app,
            query_id=self._next_discovered_id,
            template=template,
            pattern=_NullPattern(),
        )
        self._next_discovered_id += 1
        self._by_template[template] = query_class
        self._by_name[name] = query_class
        return query_class

    def by_name(self, name: str) -> QueryClass:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(f"app {self.app!r} has no query class {name!r}") from None

    def classes(self) -> list[QueryClass]:
        """All classes ordered by query id (stable across runs)."""
        return sorted(self._by_name.values(), key=lambda c: c.query_id)

    def __len__(self) -> int:
        return len(self._by_name)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name


class _NullPattern(AccessPattern):
    """Placeholder pattern for classes discovered before being bound."""

    def pages_for_execution(self) -> ExecutionAccess:
        return ExecutionAccess()

    def footprint_pages(self) -> int:
        return 0
