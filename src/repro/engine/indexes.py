"""B+-tree index model.

Indexes matter to the reproduction for one reason: the paper's Figure 4/5
experiment drops the ``O_DATE`` index and the BestSeller query degenerates
from a handful of index-page touches per execution into a scan-like access
pattern with a flat miss-ratio curve.  The model therefore captures exactly
the properties that shape page traces:

* tree height as a function of entry count and fan-out,
* the page path of a point lookup (root → internals → leaf), and
* leaf-range traversal for range predicates.

Internal pages are few and extremely hot (they sit at the top of any LRU
stack); leaf pages are as numerous as the data demands.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .pages import PageRange, PageSpaceAllocator
from .tables import Table

__all__ = ["BTreeIndex", "IndexCatalog"]


@dataclass
class BTreeIndex:
    """A B+-tree over one table keyed by row number (a synthetic key)."""

    name: str
    table: Table
    fanout: int
    leaf_entries: int
    height: int
    internal_pages: PageRange
    leaf_pages: PageRange

    @classmethod
    def create(
        cls,
        allocator: PageSpaceAllocator,
        name: str,
        table: Table,
        fanout: int = 200,
        leaf_entries: int = 400,
    ) -> "BTreeIndex":
        """Size and allocate the tree for ``table.row_count`` entries."""
        if fanout < 2:
            raise ValueError(f"index fan-out must be at least 2: {fanout}")
        if leaf_entries < 1:
            raise ValueError(f"leaf entry count must be positive: {leaf_entries}")
        leaf_count = max(1, -(-table.row_count // leaf_entries))
        # Count internal levels until a single root fits.
        internal_count = 0
        level_pages = leaf_count
        height = 1
        while level_pages > 1:
            level_pages = -(-level_pages // fanout)
            internal_count += level_pages
            height += 1
        internal_count = max(1, internal_count)
        internal_range = allocator.allocate(f"index:{name}:internal", internal_count)
        leaf_range = allocator.allocate(f"index:{name}:leaf", leaf_count)
        return cls(
            name=name,
            table=table,
            fanout=fanout,
            leaf_entries=leaf_entries,
            height=height,
            internal_pages=internal_range,
            leaf_pages=leaf_range,
        )

    @property
    def leaf_count(self) -> int:
        return self.leaf_pages.count

    def leaf_of_row(self, row: int) -> int:
        """The leaf page id covering logical row ``row``."""
        if not 0 <= row < self.table.row_count:
            raise IndexError(f"row {row} outside table {self.table.name!r}")
        leaf_index = min(row // self.leaf_entries, self.leaf_count - 1)
        return self.leaf_pages.page(leaf_index)

    def lookup_path(self, row: int) -> list[int]:
        """Page ids touched by a point lookup: root, internals, leaf.

        The internal pages visited are deterministic in the row number, so
        repeated lookups of the same key touch identical pages — the property
        that makes index traffic cache-friendly.
        """
        leaf_index = min(row // self.leaf_entries, self.leaf_count - 1)
        path: list[int] = []
        # Walk conceptual levels top-down; level L has ceil(leaves / fanout^L)
        # pages laid out consecutively after the previous levels.
        level_sizes: list[int] = []
        size = self.leaf_count
        while size > 1:
            size = -(-size // self.fanout)
            level_sizes.append(size)
        # level_sizes is bottom-up (parents of leaves first); visit top-down.
        offset_base = 0
        offsets: list[int] = []
        for size in reversed(level_sizes):
            stride = max(1, self.leaf_count // size)
            offsets.append(offset_base + min(leaf_index // stride, size - 1))
            offset_base += size
        if not offsets:
            offsets = [0]  # single-page tree: the root is the only internal page
        path.extend(
            self.internal_pages.page(min(o, self.internal_pages.count - 1))
            for o in offsets
        )
        path.append(self.leaf_of_row(row))
        return path

    def range_path(self, start_row: int, row_span: int) -> list[int]:
        """Pages touched by a leaf-level range scan of ``row_span`` rows."""
        if row_span <= 0:
            raise ValueError(f"range span must be positive: {row_span}")
        path = self.lookup_path(start_row)
        first_leaf = min(start_row // self.leaf_entries, self.leaf_count - 1)
        last_row = min(start_row + row_span - 1, self.table.row_count - 1)
        last_leaf = min(last_row // self.leaf_entries, self.leaf_count - 1)
        for leaf_index in range(first_leaf + 1, last_leaf + 1):
            path.append(self.leaf_pages.page(leaf_index))
        return path

    def expected_lookup_pages(self) -> int:
        """Pages per point lookup (tree height, incl. the leaf)."""
        return self.height


class IndexCatalog:
    """The set of indexes available to an engine; supports online drop/add.

    Dropping an index is the fault-injection hook for the Figure 4
    experiment: query classes that relied on it fall back to scans.
    """

    def __init__(self) -> None:
        self._indexes: dict[str, BTreeIndex] = {}
        self._dropped: set[str] = set()

    def add(self, index: BTreeIndex) -> None:
        if index.name in self._indexes:
            raise ValueError(f"index {index.name!r} already registered")
        self._indexes[index.name] = index

    def drop(self, name: str) -> None:
        """Mark ``name`` dropped; lookups now report it unavailable."""
        if name not in self._indexes:
            raise KeyError(f"no index named {name!r}")
        self._dropped.add(name)

    def restore(self, name: str) -> None:
        """Undo a drop (models re-creating the index)."""
        self._dropped.discard(name)

    def available(self, name: str) -> bool:
        return name in self._indexes and name not in self._dropped

    def get(self, name: str) -> BTreeIndex:
        """The index object regardless of drop state (for re-creation)."""
        try:
            return self._indexes[name]
        except KeyError:
            raise KeyError(f"no index named {name!r}") from None

    def names(self) -> list[str]:
        return sorted(self._indexes)
