"""Query execution against a buffer pool, with an analytic latency model.

One execution of a query class:

1. asks the class's access pattern for its demand and prefetch pages,
2. drives them through the engine's buffer pool (demand accesses count hits
   and misses; prefetch pages count read-ahead I/O), and
3. converts the observed hit/miss mix into a latency using a linear cost
   model scaled by the hosting server's current CPU and I/O contention
   factors.

The cost model is deliberately simple — the paper's detection algorithm only
consumes *relative* changes in latency and counters, which a linear model
reproduces faithfully.
"""

from __future__ import annotations

from dataclasses import dataclass

from .bufferpool import BufferPool
from .query import QueryClass
from .statslog import ExecutionRecord

__all__ = ["CostModel", "QueryExecutor"]


@dataclass(frozen=True)
class CostModel:
    """Latency coefficients, in seconds.

    ``io_time_per_page`` is the storage service time of one random page read
    on an *unloaded* device; the server's I/O contention factor multiplies
    it.  ``hit_time_per_page`` is the in-memory page-processing cost.
    Read-ahead requests are issued asynchronously and overlap with demand
    work, so they contribute at a discounted ``readahead_overlap`` weight.
    """

    io_time_per_page: float = 0.0025
    hit_time_per_page: float = 0.00002
    readahead_overlap: float = 0.15

    def __post_init__(self) -> None:
        if self.io_time_per_page < 0 or self.hit_time_per_page < 0:
            raise ValueError("cost-model times must be non-negative")
        if not 0 <= self.readahead_overlap <= 1:
            raise ValueError(
                f"readahead overlap must be in [0, 1]: {self.readahead_overlap}"
            )

    def latency(
        self,
        cpu_cost: float,
        hits: int,
        misses: int,
        readahead_fetches: int,
        cpu_factor: float = 1.0,
        io_factor: float = 1.0,
    ) -> float:
        """Latency of one execution given its page-level outcome."""
        if cpu_factor < 1.0 or io_factor < 1.0:
            raise ValueError("contention factors cannot be below 1.0")
        cpu_component = cpu_cost * cpu_factor
        memory_component = hits * self.hit_time_per_page
        io_component = (
            misses + readahead_fetches * self.readahead_overlap
        ) * self.io_time_per_page * io_factor
        return cpu_component + memory_component + io_component


class QueryExecutor:
    """Runs query classes against one buffer pool and emits execution records."""

    def __init__(self, pool: BufferPool, cost_model: CostModel | None = None) -> None:
        self.pool = pool
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.executions = 0

    def execute(
        self,
        query_class: QueryClass,
        timestamp: float = 0.0,
        cpu_factor: float = 1.0,
        io_factor: float = 1.0,
        record_pages: bool = True,
    ) -> ExecutionRecord:
        """Execute one instance of ``query_class`` and return its record.

        ``record_pages`` controls whether the demand-page list is carried on
        the record (the statistics log feeds it into the class's recent-access
        window; disable for bulk replay where windows are not needed).
        """
        access = query_class.execute_pages()
        key = query_class.context_key
        # Read-ahead is issued first: it anticipates the demand accesses, so
        # prefetched pages are resident by the time the query touches them.
        readahead_fetches = (
            self.pool.prefetch(access.prefetch, key) if access.prefetch else 0
        )
        hits = 0
        for page_id in access.demand:
            if self.pool.access(page_id, key):
                hits += 1
        misses = len(access.demand) - hits
        latency = self.cost_model.latency(
            cpu_cost=query_class.cpu_cost,
            hits=hits,
            misses=misses,
            readahead_fetches=readahead_fetches,
            cpu_factor=cpu_factor,
            io_factor=io_factor,
        )
        self.executions += 1
        return ExecutionRecord(
            timestamp=timestamp,
            context_key=key,
            latency=latency,
            page_accesses=len(access.demand),
            misses=misses,
            readaheads=readahead_fetches,
            io_block_requests=misses + readahead_fetches,
            pages=tuple(access.demand) if record_pages else (),
        )
