"""Query execution against a buffer pool, with an analytic latency model.

One execution of a query class:

1. asks the class's access pattern for its demand and prefetch pages,
2. drives them through the engine's buffer pool (demand accesses count hits
   and misses; prefetch pages count read-ahead I/O), and
3. converts the observed hit/miss mix into a latency using a linear cost
   model scaled by the hosting server's current CPU and I/O contention
   factors.

The cost model is deliberately simple — the paper's detection algorithm only
consumes *relative* changes in latency and counters, which a linear model
reproduces faithfully.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..obs import NULL_OBS, Observability
from .bufferpool import BufferPool
from .query import QueryClass
from .statslog import ExecutionRecord

__all__ = ["CostModel", "QueryExecutor"]


@dataclass(frozen=True)
class CostModel:
    """Latency coefficients, in seconds.

    ``io_time_per_page`` is the storage service time of one random page read
    on an *unloaded* device; the server's I/O contention factor multiplies
    it.  ``hit_time_per_page`` is the in-memory page-processing cost.
    Read-ahead requests are issued asynchronously and overlap with demand
    work, so they contribute at a discounted ``readahead_overlap`` weight.
    """

    io_time_per_page: float = 0.0025
    hit_time_per_page: float = 0.00002
    readahead_overlap: float = 0.15

    def __post_init__(self) -> None:
        if self.io_time_per_page < 0 or self.hit_time_per_page < 0:
            raise ValueError("cost-model times must be non-negative")
        if not 0 <= self.readahead_overlap <= 1:
            raise ValueError(
                f"readahead overlap must be in [0, 1]: {self.readahead_overlap}"
            )

    def latency(
        self,
        cpu_cost: float,
        hits: int,
        misses: int,
        readahead_fetches: int,
        cpu_factor: float = 1.0,
        io_factor: float = 1.0,
    ) -> float:
        """Latency of one execution given its page-level outcome."""
        if cpu_factor < 1.0 or io_factor < 1.0:
            raise ValueError("contention factors cannot be below 1.0")
        cpu_component = cpu_cost * cpu_factor
        memory_component = hits * self.hit_time_per_page
        io_component = (
            misses + readahead_fetches * self.readahead_overlap
        ) * self.io_time_per_page * io_factor
        return cpu_component + memory_component + io_component


class QueryExecutor:
    """Runs query classes against one buffer pool and emits execution records.

    Page vectors go through the pool's batched access path in whole-execution
    units.  When an :class:`~repro.obs.Observability` handle is attached the
    executor publishes an ``engine.pages_per_sec`` gauge (pages pushed
    through the pool per second of pool time) and an ``engine.batch_pages``
    histogram of demand-vector sizes; the default ``NULL_OBS`` handle keeps
    the hot path free of clock reads and instrument calls.
    """

    def __init__(
        self,
        pool: BufferPool,
        cost_model: CostModel | None = None,
        obs: Observability | None = None,
        engine_name: str = "",
    ) -> None:
        self.pool = pool
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.executions = 0
        self.obs = obs if obs is not None else NULL_OBS
        labels = {"engine": engine_name} if engine_name else {}
        registry = self.obs.registry
        self._batch_hist = registry.histogram("engine.batch_pages", **labels)
        self._pps_gauge = registry.gauge("engine.pages_per_sec", **labels)
        self._pool_pages = 0
        self._pool_seconds = 0.0

    def execute(
        self,
        query_class: QueryClass,
        timestamp: float = 0.0,
        cpu_factor: float = 1.0,
        io_factor: float = 1.0,
        record_pages: bool = True,
    ) -> ExecutionRecord:
        """Execute one instance of ``query_class`` and return its record.

        ``record_pages`` controls whether the demand-page vector is carried
        on the record (the statistics log feeds it into the class's
        recent-access window; disable for bulk replay where windows are not
        needed).  The vector is passed through as-is — no tuple copy.
        """
        access = query_class.execute_pages()
        key = query_class.context_key
        instrumented = self.obs.enabled
        started = time.perf_counter() if instrumented else 0.0
        # Read-ahead is issued first: it anticipates the demand accesses, so
        # prefetched pages are resident by the time the query touches them.
        readahead_fetches = (
            self.pool.prefetch_many(access.prefetch, key)
            if len(access.prefetch)
            else 0
        )
        hits = self.pool.access_many(access.demand, key)
        misses = len(access.demand) - hits
        if instrumented:
            self._pool_seconds += time.perf_counter() - started
            self._pool_pages += len(access.demand) + len(access.prefetch)
            self._batch_hist.observe(len(access.demand))
            if self._pool_seconds > 0.0:
                self._pps_gauge.set(self._pool_pages / self._pool_seconds)
        latency = self.cost_model.latency(
            cpu_cost=query_class.cpu_cost,
            hits=hits,
            misses=misses,
            readahead_fetches=readahead_fetches,
            cpu_factor=cpu_factor,
            io_factor=io_factor,
        )
        self.executions += 1
        return ExecutionRecord(
            timestamp=timestamp,
            context_key=key,
            latency=latency,
            page_accesses=len(access.demand),
            misses=misses,
            readaheads=readahead_fetches,
            io_block_requests=misses + readahead_fetches,
            pages=access.demand if record_pages else (),
        )
