"""Synthetic relations for the simulated databases.

A :class:`Table` owns a contiguous range of data pages sized from its row
count and row width.  Workload generators address rows logically; the table
maps row numbers to page ids, which is all the buffer-pool simulation needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .pages import PAGE_SIZE_BYTES, PageRange, PageSpaceAllocator

__all__ = ["Table", "Schema"]


@dataclass
class Table:
    """A relation backed by a contiguous data-page range."""

    name: str
    row_count: int
    row_bytes: int
    pages: PageRange

    @classmethod
    def create(
        cls,
        allocator: PageSpaceAllocator,
        name: str,
        row_count: int,
        row_bytes: int,
    ) -> "Table":
        """Allocate data pages for ``row_count`` rows of ``row_bytes`` each."""
        if row_count <= 0:
            raise ValueError(f"table {name!r} must have rows: {row_count}")
        if row_bytes <= 0 or row_bytes > PAGE_SIZE_BYTES:
            raise ValueError(
                f"row size of {name!r} must be in (0, {PAGE_SIZE_BYTES}]: {row_bytes}"
            )
        rows_per_page = max(1, PAGE_SIZE_BYTES // row_bytes)
        page_count = -(-row_count // rows_per_page)
        page_range = allocator.allocate(f"table:{name}", page_count)
        return cls(name=name, row_count=row_count, row_bytes=row_bytes, pages=page_range)

    @property
    def rows_per_page(self) -> int:
        return max(1, PAGE_SIZE_BYTES // self.row_bytes)

    @property
    def page_count(self) -> int:
        return self.pages.count

    def page_of_row(self, row: int) -> int:
        """The page id holding logical row ``row``."""
        if not 0 <= row < self.row_count:
            raise IndexError(f"row {row} outside table {self.name!r}")
        return self.pages.page(row // self.rows_per_page)

    def scan_pages(self, start_page: int = 0, count: int | None = None) -> list[int]:
        """Page ids of a (partial) sequential scan starting at ``start_page``."""
        if count is None:
            count = self.page_count - start_page
        return self.pages.slice(start_page, count)


@dataclass
class Schema:
    """A named collection of tables sharing one page-space allocator."""

    name: str
    allocator: PageSpaceAllocator = field(default_factory=PageSpaceAllocator)
    tables: dict[str, Table] = field(default_factory=dict)

    def add_table(self, name: str, row_count: int, row_bytes: int) -> Table:
        if name in self.tables:
            raise ValueError(f"table {name!r} already exists in schema {self.name!r}")
        table = Table.create(self.allocator, name, row_count, row_bytes)
        self.tables[name] = table
        return table

    def table(self, name: str) -> Table:
        try:
            return self.tables[name]
        except KeyError:
            raise KeyError(f"schema {self.name!r} has no table {name!r}") from None

    @property
    def total_pages(self) -> int:
        return self.allocator.total_pages
