"""Storage-engine substrate: pages, buffer pools, indexes, queries, logging."""

from .access import (
    AccessPattern,
    CompositePattern,
    ExecutionAccess,
    IndexLookup,
    IndexRangeScan,
    PlanSwitchingPattern,
    SequentialChunkScan,
    UniformWorkingSet,
    ZipfWorkingSet,
)
from .bufferpool import (
    BufferPool,
    LRUBufferPool,
    PartitionedBufferPool,
    PoolStats,
    replay_trace,
)
from .engine import DEFAULT_POOL_PAGES, DatabaseEngine, EngineConfig
from .executor import CostModel, QueryExecutor
from .indexes import BTreeIndex, IndexCatalog
from .locks import (
    CompositeLockPattern,
    LockGrant,
    LockManager,
    LockMode,
    LockRequest,
    LockStats,
    RowGroupLockPattern,
    WaitsForGraph,
)
from .pages import PAGE_SIZE_BYTES, PageRange, PageSpaceAllocator, pages_for_bytes
from .query import QueryClass, QueryClassRegistry, QueryInstance, normalize_template
from .statslog import ClassIntervalStats, EngineLog, ExecutionRecord, ThreadLogBuffer
from .tables import Schema, Table

__all__ = [
    "AccessPattern",
    "BTreeIndex",
    "BufferPool",
    "ClassIntervalStats",
    "CompositePattern",
    "CostModel",
    "DEFAULT_POOL_PAGES",
    "DatabaseEngine",
    "EngineConfig",
    "EngineLog",
    "ExecutionAccess",
    "ExecutionRecord",
    "IndexCatalog",
    "CompositeLockPattern",
    "LockGrant",
    "LockManager",
    "LockMode",
    "LockRequest",
    "LockStats",
    "IndexLookup",
    "IndexRangeScan",
    "LRUBufferPool",
    "PAGE_SIZE_BYTES",
    "PageRange",
    "PageSpaceAllocator",
    "PartitionedBufferPool",
    "PlanSwitchingPattern",
    "PoolStats",
    "QueryClass",
    "RowGroupLockPattern",
    "WaitsForGraph",
    "QueryClassRegistry",
    "QueryExecutor",
    "QueryInstance",
    "Schema",
    "SequentialChunkScan",
    "Table",
    "ThreadLogBuffer",
    "UniformWorkingSet",
    "ZipfWorkingSet",
    "normalize_template",
    "pages_for_bytes",
    "replay_trace",
]
