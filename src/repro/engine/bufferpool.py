"""Buffer-pool simulation: shared LRU pools and quota-partitioned pools.

This is the component the paper's fine-grained memory actions manipulate.
Two pool organisations are provided:

* :class:`LRUBufferPool` — a single LRU-managed pool shared by every query
  class on the engine (MySQL/InnoDB's default behaviour in the paper).
* :class:`PartitionedBufferPool` — the paper's quota-enforcement mechanism:
  a problem query class is pinned to a dedicated partition of fixed size and
  everything else shares the remainder, each partition running its own LRU.

Both organisations expose the same ``access`` / ``prefetch`` interface and
keep per-query-class hit/miss/read-ahead counters, which is exactly the
signal the outlier detector consumes.

Every pool also exposes a *batched* fast path — :meth:`BufferPool.access_many`
and :meth:`BufferPool.prefetch_many` — that processes one execution's whole
page vector per call: residency and LRU maintenance run over hoisted locals,
hit/miss counts accumulate in plain ints and reach :class:`PoolStats` once
per batch through :meth:`PoolStats.record_batch`, and read-ahead vectors are
deduplicated with numpy set operations before touching the pool.  The batched
path is bit-exact with the per-page loop: same hit/miss/eviction sequence,
same LRU order, same counters (the property suite in
``tests/property/test_prop_bufferpool_batched.py`` pins this differentially).
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "PoolStats",
    "BufferPool",
    "LRUBufferPool",
    "PartitionedBufferPool",
    "replay_trace",
]


@dataclass
class PoolStats:
    """Hit/miss/read-ahead/eviction counters, kept globally and (except
    evictions, whose victim class is unknowable) per query class."""

    hits: int = 0
    misses: int = 0
    readaheads: int = 0
    evictions: int = 0
    per_class: dict[str, dict[str, int]] = field(default_factory=dict)

    def _bucket(self, query_class: str) -> dict[str, int]:
        if query_class not in self.per_class:
            self.per_class[query_class] = {"hits": 0, "misses": 0, "readaheads": 0}
        return self.per_class[query_class]

    def record_hit(self, query_class: str) -> None:
        self.hits += 1
        self._bucket(query_class)["hits"] += 1

    def record_miss(self, query_class: str) -> None:
        self.misses += 1
        self._bucket(query_class)["misses"] += 1

    def record_readahead(self, query_class: str, count: int = 1) -> None:
        self.readaheads += count
        self._bucket(query_class)["readaheads"] += count

    def record_eviction(self, count: int = 1) -> None:
        self.evictions += count

    def record_batch(self, query_class: str, hits: int, misses: int) -> None:
        """Fold one batch's hit/miss outcome in with two bucket lookups.

        Equivalent to ``hits`` ``record_hit`` calls plus ``misses``
        ``record_miss`` calls; the batched access path uses it to keep the
        per-page stats work out of the pool's hot loop.
        """
        if hits < 0 or misses < 0:
            raise ValueError(
                f"batch counts cannot be negative: hits={hits} misses={misses}"
            )
        if hits == 0 and misses == 0:
            return  # zero record_* calls: do not materialise a class bucket
        self.hits += hits
        self.misses += misses
        bucket = self._bucket(query_class)
        bucket["hits"] += hits
        bucket["misses"] += misses

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        """Overall hit ratio; 1.0 on an untouched pool by convention."""
        return self.hits / self.accesses if self.accesses else 1.0

    @property
    def miss_ratio(self) -> float:
        return 1.0 - self.hit_ratio

    def class_hit_ratio(self, query_class: str) -> float:
        bucket = self.per_class.get(query_class)
        if not bucket:
            return 1.0
        total = bucket["hits"] + bucket["misses"]
        return bucket["hits"] / total if total else 1.0

    def class_misses(self, query_class: str) -> int:
        bucket = self.per_class.get(query_class)
        return bucket["misses"] if bucket else 0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.readaheads = 0
        self.evictions = 0
        self.per_class.clear()


class BufferPool:
    """Common interface of every pool organisation."""

    capacity: int
    stats: PoolStats

    def access(self, page_id: int, query_class: str = "") -> bool:
        """Reference one page; returns ``True`` on a hit."""
        raise NotImplementedError

    def prefetch(self, page_ids: Iterable[int], query_class: str = "") -> int:
        """Read-ahead: load pages without counting demand misses.

        Returns the number of pages actually fetched from storage (pages
        already resident are skipped).  Each fetched page is one I/O block
        request and one read-ahead request in the per-class counters.
        """
        raise NotImplementedError

    def access_many(
        self, page_ids: Sequence[int] | np.ndarray, query_class: str = ""
    ) -> int:
        """Reference a whole page vector; returns the number of hits.

        Bit-exact with calling :meth:`access` per page, in order.  Subclasses
        override this with a batch-local fast path; the default delegates.
        """
        if isinstance(page_ids, np.ndarray):
            page_ids = page_ids.tolist()
        hits = 0
        for page_id in page_ids:
            if self.access(page_id, query_class):
                hits += 1
        return hits

    def prefetch_many(
        self, page_ids: Sequence[int] | np.ndarray, query_class: str = ""
    ) -> int:
        """Batched :meth:`prefetch`; returns the number of pages fetched."""
        if isinstance(page_ids, np.ndarray):
            page_ids = page_ids.tolist()
        return self.prefetch(page_ids, query_class)

    def resident(self, page_id: int) -> bool:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    @property
    def total_evictions(self) -> int:
        """Pages pushed out by replacement, across every partition."""
        raise NotImplementedError


class LRUBufferPool(BufferPool):
    """A fixed-capacity page cache with strict LRU replacement.

    LRU obeys Mattson's inclusion property, which is what lets the MRC
    tracker predict this pool's miss ratio at any capacity from one pass
    over the trace.
    """

    def __init__(self, capacity: int, eviction_sink: PoolStats | None = None) -> None:
        if capacity <= 0:
            raise ValueError(f"buffer pool capacity must be positive: {capacity}")
        self.capacity = capacity
        self.stats = PoolStats()
        self._pages: OrderedDict[int, None] = OrderedDict()
        # Evictions recorded here also reach the sink — the partitioned
        # pool's top-level stats, so child-partition evictions are never
        # invisible at the aggregate level.
        self._eviction_sink = eviction_sink

    def __len__(self) -> int:
        return len(self._pages)

    def resident(self, page_id: int) -> bool:
        return page_id in self._pages

    def access(self, page_id: int, query_class: str = "") -> bool:
        if page_id in self._pages:
            self._pages.move_to_end(page_id)
            self.stats.record_hit(query_class)
            return True
        self._admit(page_id)
        self.stats.record_miss(query_class)
        return False

    def prefetch(self, page_ids: Iterable[int], query_class: str = "") -> int:
        fetched = 0
        for page_id in page_ids:
            if page_id in self._pages:
                continue
            self._admit(page_id)
            fetched += 1
        if fetched:
            self.stats.record_readahead(query_class, fetched)
        return fetched

    def access_many(
        self, page_ids: Sequence[int] | np.ndarray, query_class: str = ""
    ) -> int:
        """Batched :meth:`access` over one execution's demand vector.

        Residency probes, LRU reordering, and eviction run against hoisted
        locals; hit/miss totals reach :class:`PoolStats` once per batch.
        """
        if isinstance(page_ids, np.ndarray):
            page_ids = page_ids.tolist()
        pages = self._pages
        move = pages.move_to_end
        pop = pages.popitem
        capacity = self.capacity
        hits = 0
        total = 0
        evicted = 0
        for page_id in page_ids:
            total += 1
            if page_id in pages:
                move(page_id)
                hits += 1
            else:
                while len(pages) >= capacity:
                    pop(last=False)
                    evicted += 1
                pages[page_id] = None
        if evicted:
            self._record_evictions(evicted)
        self.stats.record_batch(query_class, hits, total - hits)
        return hits

    def prefetch_many(
        self, page_ids: Sequence[int] | np.ndarray, query_class: str = ""
    ) -> int:
        """Batched :meth:`prefetch` over one execution's read-ahead vector.

        When the vector arrives as an ndarray and the whole candidate set
        fits without displacing anything, duplicates are stripped with numpy
        set operations (first occurrence wins) and the survivors are admitted
        in one pass.  Any batch that could trigger evictions mid-way falls
        back to the per-page loop, whose interleaving of admissions and
        evictions is the semantic contract.
        """
        if isinstance(page_ids, np.ndarray):
            if len(page_ids) == 0:
                return 0
            unique, first_index = np.unique(page_ids, return_index=True)
            if len(self._pages) + len(unique) <= self.capacity:
                pages = self._pages
                fetched = 0
                for page_id in page_ids[np.sort(first_index)].tolist():
                    if page_id not in pages:
                        pages[page_id] = None
                        fetched += 1
                if fetched:
                    self.stats.record_readahead(query_class, fetched)
                return fetched
            page_ids = page_ids.tolist()
        return self.prefetch(page_ids, query_class)

    def _admit(self, page_id: int) -> None:
        evicted = 0
        while len(self._pages) >= self.capacity:
            self._pages.popitem(last=False)
            evicted += 1
        self._pages[page_id] = None
        if evicted:
            self._record_evictions(evicted)

    def _record_evictions(self, count: int) -> None:
        self.stats.record_eviction(count)
        if self._eviction_sink is not None:
            self._eviction_sink.record_eviction(count)

    @property
    def total_evictions(self) -> int:
        return self.stats.evictions

    def lru_order(self) -> list[int]:
        """Resident page ids from least to most recently used."""
        return list(self._pages.keys())

    def evict_all(self) -> None:
        self._pages.clear()


class PartitionedBufferPool(BufferPool):
    """A pool split into named LRU partitions with fixed page quotas.

    Query classes are routed to a partition by an explicit assignment map;
    unassigned classes share the ``default`` partition.  This is the paper's
    quota-enforcement action: the problem class gets a dedicated partition
    sized by the quota-search algorithm, so its scan-like traffic can no
    longer evict the rest of the application's working set.
    """

    DEFAULT = "default"

    def __init__(self, capacity: int, quotas: dict[str, int] | None = None) -> None:
        if capacity <= 0:
            raise ValueError(f"buffer pool capacity must be positive: {capacity}")
        self.capacity = capacity
        self.stats = PoolStats()
        self._partitions: dict[str, LRUBufferPool] = {}
        self._assignment: dict[str, str] = {}
        quotas = dict(quotas) if quotas else {}
        reserved = sum(quotas.values())
        if reserved >= capacity:
            raise ValueError(
                f"quotas reserve {reserved} pages of a {capacity}-page pool, "
                "leaving nothing for the default partition"
            )
        for name, quota in quotas.items():
            if name == self.DEFAULT:
                raise ValueError("the default partition is sized implicitly")
            self._partitions[name] = LRUBufferPool(
                quota, eviction_sink=self.stats
            )
        self._partitions[self.DEFAULT] = LRUBufferPool(
            capacity - reserved, eviction_sink=self.stats
        )

    @property
    def partition_names(self) -> list[str]:
        return list(self._partitions.keys())

    def quota_of(self, partition: str) -> int:
        return self._partitions[partition].capacity

    def assign(self, query_class: str, partition: str) -> None:
        """Route every access of ``query_class`` to ``partition``."""
        if partition not in self._partitions:
            raise KeyError(f"no partition named {partition!r}")
        self._assignment[query_class] = partition

    def partition_for(self, query_class: str) -> str:
        return self._assignment.get(query_class, self.DEFAULT)

    def _pool_for(self, query_class: str) -> LRUBufferPool:
        return self._partitions[self.partition_for(query_class)]

    def __len__(self) -> int:
        return sum(len(pool) for pool in self._partitions.values())

    def resident(self, page_id: int) -> bool:
        return any(pool.resident(page_id) for pool in self._partitions.values())

    def access(self, page_id: int, query_class: str = "") -> bool:
        hit = self._pool_for(query_class).access(page_id, query_class)
        if hit:
            self.stats.record_hit(query_class)
        else:
            self.stats.record_miss(query_class)
        return hit

    def prefetch(self, page_ids: Iterable[int], query_class: str = "") -> int:
        fetched = self._pool_for(query_class).prefetch(page_ids, query_class)
        if fetched:
            self.stats.record_readahead(query_class, fetched)
        return fetched

    def access_many(
        self, page_ids: Sequence[int] | np.ndarray, query_class: str = ""
    ) -> int:
        """Batched access: one partition lookup and one stats flush per batch."""
        hits = self._pool_for(query_class).access_many(page_ids, query_class)
        self.stats.record_batch(query_class, hits, len(page_ids) - hits)
        return hits

    def prefetch_many(
        self, page_ids: Sequence[int] | np.ndarray, query_class: str = ""
    ) -> int:
        fetched = self._pool_for(query_class).prefetch_many(page_ids, query_class)
        if fetched:
            self.stats.record_readahead(query_class, fetched)
        return fetched

    @property
    def total_evictions(self) -> int:
        return sum(pool.stats.evictions for pool in self._partitions.values())

    def partition_stats(self, partition: str) -> PoolStats:
        return self._partitions[partition].stats


def replay_trace(
    pool: BufferPool,
    pages: Iterable[int],
    query_class: str = "",
    classes: Iterable[str] | None = None,
) -> PoolStats:
    """Drive ``pool`` with a page trace and return the pool's stats object.

    When ``classes`` is given it must parallel ``pages`` and supplies the
    per-access query-class tag (for interleaved multi-class traces).  The
    trace runs through the batched access path: single-class traces go down
    in one call, tagged traces as one batch per run of consecutive
    same-class accesses, which preserves the exact access interleaving.
    """
    if classes is None:
        if not isinstance(pages, (list, np.ndarray)):
            pages = list(pages)
        pool.access_many(pages, query_class)
        return pool.stats
    run_pages: list[int] = []
    run_class = ""
    for page_id, cls in zip(pages, classes):
        if cls != run_class and run_pages:
            pool.access_many(run_pages, run_class)
            run_pages = []
        run_class = cls
        run_pages.append(page_id)
    if run_pages:
        pool.access_many(run_pages, run_class)
    return pool.stats
