"""Buffer-pool simulation: shared LRU pools and quota-partitioned pools.

This is the component the paper's fine-grained memory actions manipulate.
Two pool organisations are provided:

* :class:`LRUBufferPool` — a single LRU-managed pool shared by every query
  class on the engine (MySQL/InnoDB's default behaviour in the paper).
* :class:`PartitionedBufferPool` — the paper's quota-enforcement mechanism:
  a problem query class is pinned to a dedicated partition of fixed size and
  everything else shares the remainder, each partition running its own LRU.

Both organisations expose the same ``access`` / ``prefetch`` interface and
keep per-query-class hit/miss/read-ahead counters, which is exactly the
signal the outlier detector consumes.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Iterable
from dataclasses import dataclass, field

__all__ = [
    "PoolStats",
    "BufferPool",
    "LRUBufferPool",
    "PartitionedBufferPool",
    "replay_trace",
]


@dataclass
class PoolStats:
    """Hit/miss/read-ahead/eviction counters, kept globally and (except
    evictions, whose victim class is unknowable) per query class."""

    hits: int = 0
    misses: int = 0
    readaheads: int = 0
    evictions: int = 0
    per_class: dict[str, dict[str, int]] = field(default_factory=dict)

    def _bucket(self, query_class: str) -> dict[str, int]:
        if query_class not in self.per_class:
            self.per_class[query_class] = {"hits": 0, "misses": 0, "readaheads": 0}
        return self.per_class[query_class]

    def record_hit(self, query_class: str) -> None:
        self.hits += 1
        self._bucket(query_class)["hits"] += 1

    def record_miss(self, query_class: str) -> None:
        self.misses += 1
        self._bucket(query_class)["misses"] += 1

    def record_readahead(self, query_class: str, count: int = 1) -> None:
        self.readaheads += count
        self._bucket(query_class)["readaheads"] += count

    def record_eviction(self, count: int = 1) -> None:
        self.evictions += count

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        """Overall hit ratio; 1.0 on an untouched pool by convention."""
        return self.hits / self.accesses if self.accesses else 1.0

    @property
    def miss_ratio(self) -> float:
        return 1.0 - self.hit_ratio

    def class_hit_ratio(self, query_class: str) -> float:
        bucket = self.per_class.get(query_class)
        if not bucket:
            return 1.0
        total = bucket["hits"] + bucket["misses"]
        return bucket["hits"] / total if total else 1.0

    def class_misses(self, query_class: str) -> int:
        bucket = self.per_class.get(query_class)
        return bucket["misses"] if bucket else 0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.readaheads = 0
        self.evictions = 0
        self.per_class.clear()


class BufferPool:
    """Common interface of every pool organisation."""

    capacity: int
    stats: PoolStats

    def access(self, page_id: int, query_class: str = "") -> bool:
        """Reference one page; returns ``True`` on a hit."""
        raise NotImplementedError

    def prefetch(self, page_ids: Iterable[int], query_class: str = "") -> int:
        """Read-ahead: load pages without counting demand misses.

        Returns the number of pages actually fetched from storage (pages
        already resident are skipped).  Each fetched page is one I/O block
        request and one read-ahead request in the per-class counters.
        """
        raise NotImplementedError

    def resident(self, page_id: int) -> bool:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    @property
    def total_evictions(self) -> int:
        """Pages pushed out by replacement, across every partition."""
        raise NotImplementedError


class LRUBufferPool(BufferPool):
    """A fixed-capacity page cache with strict LRU replacement.

    LRU obeys Mattson's inclusion property, which is what lets the MRC
    tracker predict this pool's miss ratio at any capacity from one pass
    over the trace.
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"buffer pool capacity must be positive: {capacity}")
        self.capacity = capacity
        self.stats = PoolStats()
        self._pages: OrderedDict[int, None] = OrderedDict()

    def __len__(self) -> int:
        return len(self._pages)

    def resident(self, page_id: int) -> bool:
        return page_id in self._pages

    def access(self, page_id: int, query_class: str = "") -> bool:
        if page_id in self._pages:
            self._pages.move_to_end(page_id)
            self.stats.record_hit(query_class)
            return True
        self._admit(page_id)
        self.stats.record_miss(query_class)
        return False

    def prefetch(self, page_ids: Iterable[int], query_class: str = "") -> int:
        fetched = 0
        for page_id in page_ids:
            if page_id in self._pages:
                continue
            self._admit(page_id)
            fetched += 1
        if fetched:
            self.stats.record_readahead(query_class, fetched)
        return fetched

    def _admit(self, page_id: int) -> None:
        while len(self._pages) >= self.capacity:
            self._pages.popitem(last=False)
            self.stats.evictions += 1
        self._pages[page_id] = None

    @property
    def total_evictions(self) -> int:
        return self.stats.evictions

    def lru_order(self) -> list[int]:
        """Resident page ids from least to most recently used."""
        return list(self._pages.keys())

    def evict_all(self) -> None:
        self._pages.clear()


class PartitionedBufferPool(BufferPool):
    """A pool split into named LRU partitions with fixed page quotas.

    Query classes are routed to a partition by an explicit assignment map;
    unassigned classes share the ``default`` partition.  This is the paper's
    quota-enforcement action: the problem class gets a dedicated partition
    sized by the quota-search algorithm, so its scan-like traffic can no
    longer evict the rest of the application's working set.
    """

    DEFAULT = "default"

    def __init__(self, capacity: int, quotas: dict[str, int] | None = None) -> None:
        if capacity <= 0:
            raise ValueError(f"buffer pool capacity must be positive: {capacity}")
        self.capacity = capacity
        self.stats = PoolStats()
        self._partitions: dict[str, LRUBufferPool] = {}
        self._assignment: dict[str, str] = {}
        quotas = dict(quotas) if quotas else {}
        reserved = sum(quotas.values())
        if reserved >= capacity:
            raise ValueError(
                f"quotas reserve {reserved} pages of a {capacity}-page pool, "
                "leaving nothing for the default partition"
            )
        for name, quota in quotas.items():
            if name == self.DEFAULT:
                raise ValueError("the default partition is sized implicitly")
            self._partitions[name] = LRUBufferPool(quota)
        self._partitions[self.DEFAULT] = LRUBufferPool(capacity - reserved)

    @property
    def partition_names(self) -> list[str]:
        return list(self._partitions.keys())

    def quota_of(self, partition: str) -> int:
        return self._partitions[partition].capacity

    def assign(self, query_class: str, partition: str) -> None:
        """Route every access of ``query_class`` to ``partition``."""
        if partition not in self._partitions:
            raise KeyError(f"no partition named {partition!r}")
        self._assignment[query_class] = partition

    def partition_for(self, query_class: str) -> str:
        return self._assignment.get(query_class, self.DEFAULT)

    def _pool_for(self, query_class: str) -> LRUBufferPool:
        return self._partitions[self.partition_for(query_class)]

    def __len__(self) -> int:
        return sum(len(pool) for pool in self._partitions.values())

    def resident(self, page_id: int) -> bool:
        return any(pool.resident(page_id) for pool in self._partitions.values())

    def access(self, page_id: int, query_class: str = "") -> bool:
        hit = self._pool_for(query_class).access(page_id, query_class)
        if hit:
            self.stats.record_hit(query_class)
        else:
            self.stats.record_miss(query_class)
        return hit

    def prefetch(self, page_ids: Iterable[int], query_class: str = "") -> int:
        fetched = self._pool_for(query_class).prefetch(page_ids, query_class)
        if fetched:
            self.stats.record_readahead(query_class, fetched)
        return fetched

    @property
    def total_evictions(self) -> int:
        return sum(pool.stats.evictions for pool in self._partitions.values())

    def partition_stats(self, partition: str) -> PoolStats:
        return self._partitions[partition].stats


def replay_trace(
    pool: BufferPool,
    pages: Iterable[int],
    query_class: str = "",
    classes: Iterable[str] | None = None,
) -> PoolStats:
    """Drive ``pool`` with a page trace and return the pool's stats object.

    When ``classes`` is given it must parallel ``pages`` and supplies the
    per-access query-class tag (for interleaved multi-class traces).
    """
    if classes is None:
        for page_id in pages:
            pool.access(page_id, query_class)
    else:
        for page_id, cls in zip(pages, classes):
            pool.access(page_id, cls)
    return pool.stats
