"""Access-pattern generators: the page-reference behaviour of query classes.

Every query class owns an :class:`AccessPattern` that, per execution,
produces the list of *demand* pages it references and the *prefetch* pages
the engine reads ahead on its behalf.  The patterns capture the locality
structure that the paper's experiments hinge on:

* index lookups touch a short, highly reusable page path (root/internal
  pages are shared by every execution);
* Zipf-skewed references over a working set produce the classic convex
  miss-ratio curve with a knee at the working-set size;
* cyclic sequential scans are the LRU-pathological case — a flat miss-ratio
  curve near 1 until the entire footprint fits in memory — which is exactly
  what the un-indexed BestSeller and the I/O-hungry SearchItemsByRegion
  degenerate into.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..sim.rng import RandomStream, ZipfGenerator
from .indexes import BTreeIndex, IndexCatalog
from .pages import PageRange
from .tables import Table

__all__ = [
    "ExecutionAccess",
    "AccessPattern",
    "ZipfWorkingSet",
    "UniformWorkingSet",
    "SequentialChunkScan",
    "IndexLookup",
    "IndexRangeScan",
    "PlanSwitchingPattern",
    "CompositePattern",
]


@dataclass
class ExecutionAccess:
    """Page references produced by one execution of a query."""

    demand: list[int] = field(default_factory=list)
    prefetch: list[int] = field(default_factory=list)

    def merged(self, other: "ExecutionAccess") -> "ExecutionAccess":
        return ExecutionAccess(
            demand=self.demand + other.demand,
            prefetch=self.prefetch + other.prefetch,
        )

    @property
    def total_pages(self) -> int:
        return len(self.demand) + len(self.prefetch)


class AccessPattern:
    """Interface: produce the page references of one query execution."""

    def pages_for_execution(self) -> ExecutionAccess:
        raise NotImplementedError

    def footprint_pages(self) -> int:
        """Upper bound on distinct pages this pattern can ever touch."""
        raise NotImplementedError


class ZipfWorkingSet(AccessPattern):
    """Zipf-skewed references over a working set of pages.

    The working set is a deterministic pseudo-random permutation of a slice
    of the underlying page range, so rank-0 popularity does not correlate
    with physical adjacency.
    """

    def __init__(
        self,
        pages: PageRange,
        working_set: int,
        theta: float,
        pages_per_execution: int,
        stream: RandomStream,
    ) -> None:
        if working_set <= 0 or working_set > pages.count:
            raise ValueError(
                f"working set {working_set} outside (0, {pages.count}] "
                f"for range {pages.name!r}"
            )
        if pages_per_execution <= 0:
            raise ValueError(f"pages per execution must be positive: {pages_per_execution}")
        self._range = pages
        self.working_set = working_set
        self.pages_per_execution = pages_per_execution
        self._stream = stream
        layout = list(range(working_set))
        stream.shuffle(layout)
        self._layout = layout
        self._layout_array = np.asarray(layout, dtype=np.int64)
        self._zipf = ZipfGenerator(working_set, theta, stream)

    def pages_for_execution(self) -> ExecutionAccess:
        ranks = self._zipf.sample_many(self.pages_per_execution)
        demand = self._range.page_array(self._layout_array[ranks]).tolist()
        return ExecutionAccess(demand=demand)

    def footprint_pages(self) -> int:
        return self.working_set


class UniformWorkingSet(AccessPattern):
    """Uniform references over a working set — a linear miss-ratio curve."""

    def __init__(
        self,
        pages: PageRange,
        working_set: int,
        pages_per_execution: int,
        stream: RandomStream,
    ) -> None:
        if working_set <= 0 or working_set > pages.count:
            raise ValueError(
                f"working set {working_set} outside (0, {pages.count}]"
            )
        self._range = pages
        self.working_set = working_set
        self.pages_per_execution = pages_per_execution
        self._stream = stream

    def pages_for_execution(self) -> ExecutionAccess:
        offsets = self._stream.integers_array(
            0, self.working_set, self.pages_per_execution
        )
        demand = self._range.page_array(offsets).tolist()
        return ExecutionAccess(demand=demand)

    def footprint_pages(self) -> int:
        return self.working_set


class SequentialChunkScan(AccessPattern):
    """A cyclic sequential scan consuming ``chunk`` pages per execution.

    Each execution continues where the previous one stopped and wraps at the
    end of the region; the engine issues ``readahead`` pages of prefetch
    beyond the chunk.  Against LRU this pattern yields (almost) no reuse
    until the whole region is resident.
    """

    def __init__(
        self,
        pages: PageRange,
        chunk: int,
        readahead: int = 32,
        region: int | None = None,
    ) -> None:
        if chunk <= 0:
            raise ValueError(f"scan chunk must be positive: {chunk}")
        if readahead < 0:
            raise ValueError(f"readahead must be non-negative: {readahead}")
        self._range = pages
        self.region = min(region or pages.count, pages.count)
        if self.region <= 0:
            raise ValueError(f"scan region must be positive: {self.region}")
        self.chunk = min(chunk, self.region)
        self.readahead = readahead
        self._cursor = 0
        self._chunk_steps = np.arange(self.chunk, dtype=np.int64)
        self._readahead_steps = np.arange(
            min(self.readahead, self.region), dtype=np.int64
        )

    def pages_for_execution(self) -> ExecutionAccess:
        demand = self._range.page_array(
            (self._cursor + self._chunk_steps) % self.region
        ).tolist()
        self._cursor = (self._cursor + self.chunk) % self.region
        # Sequential read-ahead covers the chunk being scanned plus a
        # look-ahead beyond it: the engine recognises the sequential pattern
        # and fetches ahead of the scan cursor, so the demand accesses
        # themselves land as buffer-pool hits while the I/O shows up as
        # read-ahead block requests (the Figure 4(d) signature).
        prefetch = list(demand)
        if len(self._readahead_steps):
            prefetch.extend(
                self._range.page_array(
                    (self._cursor + self._readahead_steps) % self.region
                ).tolist()
            )
        return ExecutionAccess(demand=demand, prefetch=prefetch)

    def footprint_pages(self) -> int:
        return self.region


class IndexLookup(AccessPattern):
    """Point lookups through a B+-tree followed by data-page fetches."""

    def __init__(
        self,
        index: BTreeIndex,
        stream: RandomStream,
        lookups_per_execution: int = 1,
        rows_per_lookup: int = 1,
        key_theta: float = 0.6,
        key_space: int | None = None,
    ) -> None:
        if lookups_per_execution <= 0:
            raise ValueError("lookups per execution must be positive")
        if rows_per_lookup <= 0:
            raise ValueError("rows per lookup must be positive")
        self.index = index
        self.lookups_per_execution = lookups_per_execution
        self.rows_per_lookup = rows_per_lookup
        self._stream = stream
        space = min(key_space or index.table.row_count, index.table.row_count)
        layout = None  # keys map to rows directly; skew comes from the Zipf ranks
        self._zipf = ZipfGenerator(space, key_theta, stream)
        self._space = space
        self._layout = layout

    def pages_for_execution(self) -> ExecutionAccess:
        demand: list[int] = []
        table = self.index.table
        for _ in range(self.lookups_per_execution):
            row = self._zipf.sample() * max(1, table.row_count // self._space)
            row = min(row, table.row_count - 1)
            demand.extend(self.index.lookup_path(row))
            for offset in range(self.rows_per_lookup):
                demand.append(table.page_of_row(min(row + offset, table.row_count - 1)))
        return ExecutionAccess(demand=demand)

    def footprint_pages(self) -> int:
        return (
            self.index.internal_pages.count
            + self.index.leaf_count
            + self.index.table.page_count
        )


class IndexRangeScan(AccessPattern):
    """Range predicates served from index leaves plus matching data pages."""

    def __init__(
        self,
        index: BTreeIndex,
        stream: RandomStream,
        row_span: int,
        start_theta: float = 0.8,
        data_page_fraction: float = 0.25,
    ) -> None:
        if row_span <= 0:
            raise ValueError(f"row span must be positive: {row_span}")
        if not 0 <= data_page_fraction <= 1:
            raise ValueError("data page fraction must be in [0, 1]")
        self.index = index
        self.row_span = row_span
        self.data_page_fraction = data_page_fraction
        self._stream = stream
        starts = max(1, index.table.row_count - row_span)
        self._zipf = ZipfGenerator(starts, start_theta, stream)

    def pages_for_execution(self) -> ExecutionAccess:
        start = self._zipf.sample()
        demand = list(self.index.range_path(start, self.row_span))
        table = self.index.table
        matched_pages = max(1, int(self.row_span / table.rows_per_page))
        fetch = max(1, int(matched_pages * self.data_page_fraction))
        first_page = table.page_of_row(start) - table.pages.start
        demand.extend(table.scan_pages(first_page, fetch))
        return ExecutionAccess(demand=demand)

    def footprint_pages(self) -> int:
        return (
            self.index.internal_pages.count
            + self.index.leaf_count
            + self.index.table.page_count
        )


class PlanSwitchingPattern(AccessPattern):
    """Chooses between an indexed plan and a fallback plan at each execution.

    This is the ``O_DATE``-drop mechanism: while ``index_name`` is available
    in the catalog the indexed plan runs; once the index is dropped every
    execution takes the fallback (scan-like) plan, changing the query class's
    footprint and miss-ratio curve without touching the workload mix.
    """

    def __init__(
        self,
        catalog: IndexCatalog,
        index_name: str,
        indexed_plan: AccessPattern,
        fallback_plan: AccessPattern,
    ) -> None:
        self._catalog = catalog
        self.index_name = index_name
        self.indexed_plan = indexed_plan
        self.fallback_plan = fallback_plan

    @property
    def using_index(self) -> bool:
        return self._catalog.available(self.index_name)

    def pages_for_execution(self) -> ExecutionAccess:
        plan = self.indexed_plan if self.using_index else self.fallback_plan
        return plan.pages_for_execution()

    def footprint_pages(self) -> int:
        plan = self.indexed_plan if self.using_index else self.fallback_plan
        return plan.footprint_pages()


class CompositePattern(AccessPattern):
    """Concatenates several sub-patterns' references in one execution.

    Models queries with multiple operators (e.g. an index probe plus a
    partial scan of a second relation).  Sub-patterns execute in order.
    """

    def __init__(self, parts: list[AccessPattern]) -> None:
        if not parts:
            raise ValueError("composite pattern needs at least one part")
        self.parts = list(parts)

    def pages_for_execution(self) -> ExecutionAccess:
        result = ExecutionAccess()
        for part in self.parts:
            result = result.merged(part.pages_for_execution())
        return result

    def footprint_pages(self) -> int:
        return sum(part.footprint_pages() for part in self.parts)
