"""Two-phase-locking substrate with per-class wait accounting.

The paper closes by naming lock contention and deadlocks as the next
anomalies its outlier detection should narrow down ("invoking a query with
the wrong arguments, lock contention or deadlock situations").  This module
provides the substrate that makes those anomalies observable:

* a :class:`LockManager` granting shared/exclusive locks on row groups,
  with lock holds bounded in *simulated time* — an execution at time ``t``
  holds its locks until ``t + latency``, so a later execution that touches
  the same rows inside that window genuinely waits;
* per-query-class counters (lock waits, total wait time, conflicts) that
  feed the same metric pipeline as the buffer-pool counters; and
* a class-level *waits-for graph* with cycle detection, which is how the
  diagnosis layer spots deadlock-prone class pairs.

Lock granularity is the *row group* (a contiguous range of row ids mapped
to a single lockable unit), which keeps the lock table small while
preserving the conflict structure: a class that locks broad ranges (the
"wrong arguments" scenario — e.g. an unqualified UPDATE) collides with
everything touching the same table.
"""

from __future__ import annotations

import heapq
from collections import defaultdict
from dataclasses import dataclass, field
from enum import Enum

__all__ = [
    "LockMode",
    "LockRequest",
    "LockGrant",
    "LockStats",
    "LockManager",
    "CompositeLockPattern",
    "RowGroupLockPattern",
    "WaitsForGraph",
]


class LockMode(str, Enum):
    SHARED = "S"
    EXCLUSIVE = "X"

    def conflicts_with(self, other: "LockMode") -> bool:
        """S/S is the only compatible combination."""
        return not (self is LockMode.SHARED and other is LockMode.SHARED)


@dataclass(frozen=True)
class LockRequest:
    """One class's lock demand for one execution."""

    resource: tuple[str, int]  # (table name, row-group id)
    mode: LockMode


@dataclass(frozen=True)
class LockGrant:
    """The outcome of acquiring one execution's lock set."""

    wait_time: float
    conflicts: tuple[tuple[str, str], ...] = ()  # (blocked class, holder class)

    @property
    def waited(self) -> bool:
        return self.wait_time > 0.0


@dataclass
class LockStats:
    """Per-class lock accounting over one measurement interval."""

    acquisitions: int = 0
    waits: int = 0
    total_wait_time: float = 0.0
    conflicts: dict[str, int] = field(default_factory=dict)

    def record(self, grant: LockGrant) -> None:
        self.acquisitions += 1
        if grant.waited:
            self.waits += 1
            self.total_wait_time += grant.wait_time
        for _, holder in grant.conflicts:
            self.conflicts[holder] = self.conflicts.get(holder, 0) + 1

    @property
    def mean_wait(self) -> float:
        return self.total_wait_time / self.waits if self.waits else 0.0


@dataclass(order=True)
class _Hold:
    release_time: float
    resource: tuple[str, int] = field(compare=False)
    mode: LockMode = field(compare=False)
    owner: str = field(compare=False)


class LockManager:
    """Grants lock sets against holds bounded in simulated time.

    ``acquire(owner, requests, now, hold_for)`` releases every hold that
    expired before ``now``, computes how long the new owner must wait for
    conflicting holds to drain (the max over its conflicting resources —
    waits overlap), then installs the new holds from the post-wait instant.
    """

    def __init__(self) -> None:
        self._holds: dict[tuple[str, int], list[_Hold]] = defaultdict(list)
        self._expiry: list[_Hold] = []  # min-heap by release time
        self.stats: dict[str, LockStats] = defaultdict(LockStats)
        self.waits_for = WaitsForGraph()

    def _expire(self, now: float) -> None:
        while self._expiry and self._expiry[0].release_time <= now:
            hold = heapq.heappop(self._expiry)
            holders = self._holds.get(hold.resource)
            if holders:
                try:
                    holders.remove(hold)
                except ValueError:
                    pass
                if not holders:
                    del self._holds[hold.resource]

    def acquire(
        self,
        owner: str,
        requests: list[LockRequest],
        now: float,
        hold_for: float,
    ) -> LockGrant:
        """Acquire ``requests`` for ``owner`` at simulated time ``now``.

        Returns the grant with the wait this execution incurred.  Holds are
        installed for ``hold_for`` simulated seconds *after* the wait — the
        strict-2PL "hold until commit" behaviour.
        """
        if hold_for < 0:
            raise ValueError(f"hold duration must be non-negative: {hold_for}")
        self._expire(now)
        wait_until = now
        conflicts: list[tuple[str, str]] = []
        for request in requests:
            for hold in self._holds.get(request.resource, ()):
                if hold.owner == owner:
                    continue  # re-entrant: the class already holds it
                if request.mode.conflicts_with(hold.mode):
                    if hold.release_time > wait_until:
                        wait_until = hold.release_time
                    conflicts.append((owner, hold.owner))
                    self.waits_for.add_edge(owner, hold.owner)
        wait_time = wait_until - now
        release_time = wait_until + hold_for
        for request in requests:
            hold = _Hold(
                release_time=release_time,
                resource=request.resource,
                mode=request.mode,
                owner=owner,
            )
            self._holds[request.resource].append(hold)
            heapq.heappush(self._expiry, hold)
        grant = LockGrant(wait_time=wait_time, conflicts=tuple(conflicts))
        self.stats[owner].record(grant)
        return grant

    def held_resources(self, now: float) -> int:
        """Number of resources with at least one live hold."""
        self._expire(now)
        return len(self._holds)

    def interval_snapshot(self) -> dict[str, LockStats]:
        """Return and reset the per-class lock statistics."""
        snapshot = dict(self.stats)
        self.stats = defaultdict(LockStats)
        return snapshot

    def reset_waits_for(self) -> "WaitsForGraph":
        graph = self.waits_for
        self.waits_for = WaitsForGraph()
        return graph


class RowGroupLockPattern:
    """A query class's lock demand: which row groups, in which mode.

    ``groups_per_execution`` row groups are drawn Zipf-skewed from
    ``group_count`` (hot rows conflict more, like real OLTP traffic); each
    pick locks ``span`` consecutive groups.  The "wrong arguments" fault is
    expressed as ``span == group_count``: one execution locks the entire
    table, the behaviour of an UPDATE missing its WHERE clause.
    """

    def __init__(
        self,
        table: str,
        group_count: int,
        mode: LockMode,
        stream,
        groups_per_execution: int = 1,
        theta: float = 0.8,
        span: int = 1,
    ) -> None:
        if group_count <= 0:
            raise ValueError(f"group count must be positive: {group_count}")
        if groups_per_execution <= 0:
            raise ValueError("groups per execution must be positive")
        if not 1 <= span <= group_count:
            raise ValueError(f"span must be in [1, {group_count}]: {span}")
        from ..sim.rng import ZipfGenerator

        self.table = table
        self.group_count = group_count
        self.mode = mode
        self.groups_per_execution = groups_per_execution
        self.span = span
        self._zipf = ZipfGenerator(group_count, theta, stream)

    def requests(self) -> list[LockRequest]:
        """The lock set of one execution."""
        wanted: set[int] = set()
        for _ in range(self.groups_per_execution):
            start = self._zipf.sample()
            for offset in range(self.span):
                wanted.add((start + offset) % self.group_count)
        return [
            LockRequest(resource=(self.table, group), mode=self.mode)
            for group in sorted(wanted)
        ]


class CompositeLockPattern:
    """A multi-table transaction's lock demand: several patterns at once.

    Multi-statement transactions lock rows in more than one table; the
    composite simply unions its parts' lock sets.  Two classes locking the
    same pair of tables produce the classic deadlock-prone shape the
    waits-for graph exists to catch.
    """

    def __init__(self, parts: list) -> None:
        if not parts:
            raise ValueError("composite lock pattern needs at least one part")
        self.parts = list(parts)

    def requests(self) -> list[LockRequest]:
        combined: dict[tuple[str, int], LockRequest] = {}
        for part in self.parts:
            for request in part.requests():
                existing = combined.get(request.resource)
                if existing is None or request.mode is LockMode.EXCLUSIVE:
                    combined[request.resource] = request
        return [combined[key] for key in sorted(combined)]


class WaitsForGraph:
    """Class-level waits-for edges with cycle detection.

    Nodes are query-context keys; an edge ``a -> b`` means an execution of
    ``a`` waited for locks held by ``b`` at least once this interval.  A
    cycle marks a deadlock-prone class pair — the anomaly the paper's
    future work wants to surface.
    """

    def __init__(self) -> None:
        self._edges: dict[str, set[str]] = defaultdict(set)
        self._weights: dict[tuple[str, str], int] = defaultdict(int)

    def add_edge(self, waiter: str, holder: str) -> None:
        if waiter == holder:
            return
        self._edges[waiter].add(holder)
        self._weights[(waiter, holder)] += 1

    def edges(self) -> list[tuple[str, str, int]]:
        return sorted(
            (waiter, holder, weight)
            for (waiter, holder), weight in self._weights.items()
        )

    def successors(self, node: str) -> set[str]:
        return set(self._edges.get(node, ()))

    def find_cycles(self) -> list[list[str]]:
        """All elementary cycles, each rotated to start at its min node."""
        cycles: set[tuple[str, ...]] = set()
        nodes = sorted(self._edges)

        def walk(start: str, node: str, path: list[str], seen: set[str]) -> None:
            for nxt in sorted(self._edges.get(node, ())):
                if nxt == start:
                    cycle = path[:]
                    pivot = cycle.index(min(cycle))
                    cycles.add(tuple(cycle[pivot:] + cycle[:pivot]))
                elif nxt not in seen and nxt > start:
                    # Only explore nodes ordered after `start`: each cycle is
                    # found exactly once, rooted at its minimum node.
                    walk(start, nxt, path + [nxt], seen | {nxt})

        for node in nodes:
            walk(node, node, [node], {node})
        return sorted(list(cycle) for cycle in cycles)

    @property
    def has_cycle(self) -> bool:
        # Iterative three-colour DFS (cheaper than enumerating cycles).
        WHITE, GREY, BLACK = 0, 1, 2
        colour: dict[str, int] = defaultdict(int)
        for root in self._edges:
            if colour[root] != WHITE:
                continue
            stack: list[tuple[str, iter]] = [(root, iter(sorted(self._edges[root])))]
            colour[root] = GREY
            while stack:
                node, children = stack[-1]
                advanced = False
                for child in children:
                    if colour[child] == GREY:
                        return True
                    if colour[child] == WHITE:
                        colour[child] = GREY
                        stack.append(
                            (child, iter(sorted(self._edges.get(child, ()))))
                        )
                        advanced = True
                        break
                if not advanced:
                    colour[node] = BLACK
                    stack.pop()
        return False
