"""The database engine facade.

A :class:`DatabaseEngine` bundles everything one DBMS instance owns in the
paper's architecture: a buffer pool (shared or quota-partitioned), an index
catalog, worker threads with private log buffers, and the engine-level
statistics log the per-server log analyzer reads.

Several engines can run inside one VM, and several applications can run
inside one engine sharing its buffer pool — the configuration that produces
the paper's Table 2 memory-contention scenario.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from dataclasses import replace

from ..obs import NULL_OBS, Observability
from .bufferpool import BufferPool, LRUBufferPool, PartitionedBufferPool
from .executor import CostModel, QueryExecutor
from .indexes import IndexCatalog
from .locks import LockManager
from .query import QueryClass
from .statslog import EngineLog, ExecutionRecord, ThreadLogBuffer

__all__ = ["EngineConfig", "DatabaseEngine", "set_engine_obs", "engine_obs"]

DEFAULT_POOL_PAGES = 8192
"""128 MiB of 16 KiB pages — the paper's per-instance buffer-pool size."""

_ENGINE_OBS: Observability | None = None


def set_engine_obs(obs: Observability | None) -> None:
    """Attach engine-level page-throughput telemetry to ``obs``.

    Engines constructed after this call publish the ``engine.pages_per_sec``
    gauge and the ``engine.batch_pages`` histogram through their executors.
    The hook is deliberately separate from the controller's observability
    wiring: the gauge is wall-clock derived and therefore machine-dependent,
    so it must never leak into the byte-reproducible telemetry exports of
    instrumented scenario runs.  Pass ``None`` to detach.
    """
    global _ENGINE_OBS
    _ENGINE_OBS = obs


def engine_obs() -> Observability:
    """The handle new engines bind their executors to (``NULL_OBS`` default)."""
    return _ENGINE_OBS if _ENGINE_OBS is not None else NULL_OBS


@dataclass(frozen=True)
class EngineConfig:
    """Static configuration of one engine instance."""

    name: str
    pool_pages: int = DEFAULT_POOL_PAGES
    worker_threads: int = 8
    log_buffer_capacity: int = 256
    window_capacity: int = 150_000
    cost_model: CostModel = field(default_factory=CostModel)

    def __post_init__(self) -> None:
        if self.pool_pages <= 0:
            raise ValueError(f"pool pages must be positive: {self.pool_pages}")
        if self.worker_threads <= 0:
            raise ValueError(f"worker threads must be positive: {self.worker_threads}")


class DatabaseEngine:
    """One simulated DBMS instance."""

    def __init__(self, config: EngineConfig) -> None:
        self.config = config
        self.name = config.name
        self.catalog = IndexCatalog()
        self.locks = LockManager()
        self.log = EngineLog(window_capacity=config.window_capacity)
        self._quotas: dict[str, int] = {}
        self.obs = engine_obs()
        self.pool: BufferPool = LRUBufferPool(config.pool_pages)
        self.executor = QueryExecutor(
            self.pool, config.cost_model, obs=self.obs, engine_name=config.name
        )
        self._threads = [
            ThreadLogBuffer(self.log, config.log_buffer_capacity)
            for _ in range(config.worker_threads)
        ]
        self._next_thread = 0
        self.apps: set[str] = set()

    # ------------------------------------------------------------------ #
    # Execution                                                          #
    # ------------------------------------------------------------------ #

    def execute(
        self,
        query_class: QueryClass,
        timestamp: float = 0.0,
        cpu_factor: float = 1.0,
        io_factor: float = 1.0,
    ) -> ExecutionRecord:
        """Execute one query on the next worker thread and log the record."""
        self.apps.add(query_class.app)
        record = self.executor.execute(
            query_class,
            timestamp=timestamp,
            cpu_factor=cpu_factor,
            io_factor=io_factor,
        )
        if query_class.lock_pattern is not None:
            # Strict 2PL: locks are held for the execution's duration, so a
            # slow query (or one locking broad ranges) stalls everything that
            # collides with it inside that window.
            grant = self.locks.acquire(
                record.context_key,
                query_class.lock_pattern.requests(),
                now=timestamp,
                hold_for=record.latency,
            )
            if grant.waited:
                record = replace(
                    record,
                    latency=record.latency + grant.wait_time,
                    lock_waits=1,
                    lock_wait_time=grant.wait_time,
                )
        self.log.record_window(record.context_key, record.pages)
        thread = self._threads[self._next_thread]
        self._next_thread = (self._next_thread + 1) % len(self._threads)
        thread.log(record)
        return record

    def flush_logs(self) -> None:
        """Flush every thread's private buffer into the engine log.

        Called at measurement-interval boundaries so the log analyzer sees a
        complete picture of the interval.
        """
        for thread in self._threads:
            thread.flush()

    def shutdown(self) -> None:
        for thread in self._threads:
            thread.shutdown()

    # ------------------------------------------------------------------ #
    # Buffer-pool reconfiguration (the paper's quota-enforcement action)  #
    # ------------------------------------------------------------------ #

    @property
    def quotas(self) -> dict[str, int]:
        """Current per-context buffer-pool quotas (empty = shared pool)."""
        return dict(self._quotas)

    def set_quota(self, context_key: str, pages: int) -> None:
        """Pin ``context_key`` to a dedicated buffer-pool partition.

        Rebuilds the pool in partitioned form.  Resident pages are discarded
        (a repartitioned pool restarts cold), which models the warm-up cost
        the paper discusses for placement and quota changes.
        """
        if pages <= 0:
            raise ValueError(f"quota must be positive: {pages}")
        if pages >= self.config.pool_pages:
            raise ValueError(
                f"quota of {pages} pages cannot consume the whole "
                f"{self.config.pool_pages}-page pool"
            )
        self._quotas[context_key] = pages
        self._rebuild_pool()

    def clear_quota(self, context_key: str) -> None:
        """Remove one context's quota; the pool reverts to shared if none remain."""
        self._quotas.pop(context_key, None)
        self._rebuild_pool()

    def clear_all_quotas(self) -> None:
        self._quotas.clear()
        self._rebuild_pool()

    def reset_pool(self) -> None:
        """Discard every resident page and all pool counters (crash restart).

        The pool organisation survives — existing quotas are re-imposed on
        the rebuilt pool — but residency and :class:`PoolStats` start from
        zero, so hit ratios and MRC windows measured after a failure are
        not flattered by warm pre-crash state.
        """
        self._rebuild_pool()

    def _rebuild_pool(self) -> None:
        if self._quotas:
            pool: BufferPool = PartitionedBufferPool(
                self.config.pool_pages, quotas=dict(self._quotas)
            )
            for context_key in self._quotas:
                pool.assign(context_key, context_key)
        else:
            pool = LRUBufferPool(self.config.pool_pages)
        self.pool = pool
        self.executor = QueryExecutor(
            pool, self.config.cost_model, obs=self.obs, engine_name=self.name
        )

    # ------------------------------------------------------------------ #
    # Introspection                                                      #
    # ------------------------------------------------------------------ #

    @property
    def pool_pages(self) -> int:
        return self.config.pool_pages

    def hit_ratio(self) -> float:
        return self.pool.stats.hit_ratio

    def class_hit_ratio(self, context_key: str) -> float:
        return self.pool.stats.class_hit_ratio(context_key)

    def __repr__(self) -> str:
        organisation = "partitioned" if self._quotas else "shared"
        return (
            f"DatabaseEngine(name={self.name!r}, pool={self.config.pool_pages}p "
            f"{organisation}, apps={sorted(self.apps)})"
        )
