"""Stable-state signatures.

"A stable state record of average values for all metrics is made whenever
the SLA is continuously met for an application during a measurement
interval" (paper §1).  One signature is kept **per query context per
server**; it also carries the context's MRC parameters, which are computed
when the class is first scheduled and refreshed only when diagnosis
recomputes them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .metrics import Metric, MetricVector
from .mrc import MRCParameters

__all__ = ["StableStateSignature", "SignatureStore"]


@dataclass
class StableStateSignature:
    """Last-known-good metric averages (and MRC parameters) of one context."""

    context_key: str
    metrics: MetricVector
    mrc: MRCParameters | None = None
    recorded_at: float = 0.0
    intervals_observed: int = 1

    def refresh(self, metrics: MetricVector, timestamp: float) -> None:
        """Overwrite the metric averages with a newer stable interval's."""
        if metrics.context_key != self.context_key:
            raise ValueError(
                f"signature for {self.context_key!r} cannot absorb metrics "
                f"of {metrics.context_key!r}"
            )
        self.metrics = metrics
        self.recorded_at = timestamp
        self.intervals_observed += 1


class SignatureStore:
    """All stable-state signatures of one server, keyed by query context."""

    def __init__(self, server: str) -> None:
        self.server = server
        self._signatures: dict[str, StableStateSignature] = {}

    def __len__(self) -> int:
        return len(self._signatures)

    def __contains__(self, context_key: str) -> bool:
        return context_key in self._signatures

    def record_stable(
        self, vectors: dict[str, MetricVector], timestamp: float
    ) -> None:
        """Absorb a stable interval: refresh (or create) every signature."""
        for context_key, vector in vectors.items():
            signature = self._signatures.get(context_key)
            if signature is None:
                self._signatures[context_key] = StableStateSignature(
                    context_key=context_key,
                    metrics=vector,
                    recorded_at=timestamp,
                )
            else:
                signature.refresh(vector, timestamp)

    def get(self, context_key: str) -> StableStateSignature | None:
        return self._signatures.get(context_key)

    def require(self, context_key: str) -> StableStateSignature:
        signature = self._signatures.get(context_key)
        if signature is None:
            raise KeyError(
                f"server {self.server!r} has no stable signature for "
                f"{context_key!r}"
            )
        return signature

    def set_mrc(self, context_key: str, params: MRCParameters) -> None:
        """Attach MRC parameters to a context's signature.

        Contexts can acquire an MRC before their first stable interval (the
        MRC is determined when a class is first scheduled); a placeholder
        signature with empty metrics is created in that case.
        """
        signature = self._signatures.get(context_key)
        if signature is None:
            signature = StableStateSignature(
                context_key=context_key,
                metrics=MetricVector(context_key=context_key, values={}),
            )
            self._signatures[context_key] = signature
        signature.mrc = params

    def mrc_of(self, context_key: str) -> MRCParameters | None:
        signature = self._signatures.get(context_key)
        return signature.mrc if signature else None

    def stable_vectors(self) -> dict[str, MetricVector]:
        """Context -> stable metric vector, for contexts that have one."""
        return {
            key: sig.metrics
            for key, sig in self._signatures.items()
            if sig.metrics.values
        }

    def contexts(self) -> list[str]:
        return sorted(self._signatures)

    def drop(self, context_key: str) -> None:
        self._signatures.pop(context_key, None)
