"""What-if advisor: predict per-class miss ratios for a quota plan.

The paper's quota heuristic promises that, at the chosen quotas, "the miss
ratios for all QC and the rest of the application queries scheduled on the
same physical server are predicted to be their respective acceptable miss
ratios by the MRC algorithm".  This module makes that prediction a public,
testable API:

* :func:`predict_miss_ratios` evaluates each class's stored curve at the
  memory it would receive under a proposed partitioning (its own quota, or
  the shared remainder), and
* :func:`assess_plan` folds the predictions into a verdict against each
  class's acceptable miss ratio.

Because Mattson curves are exact for LRU, the prediction for a quota'd
class is exact up to trace drift; for classes sharing the default partition
it is optimistic (they compete inside it), which is the same approximation
the paper's heuristic makes.

The cluster-scope extension (:func:`predict_pool_miss_ratios`,
:func:`assess_cluster`) drops that optimism where it matters: when the
sharers' combined working sets overcommit the shared partition, each sharer
is evaluated at a *pressure-proportional* slice of it instead of the whole
remainder.  This is what lets the capacity planner see cross-class memory
contention inside one pool — the single-server path never needed to,
because its quota search already guarantees the shared floor.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .mrc import MissRatioCurve, MRCParameters
from .quota import QuotaPlan

__all__ = [
    "ClassPrediction",
    "PlanAssessment",
    "PoolAssignment",
    "ClusterAssessment",
    "predict_miss_ratios",
    "predict_pool_miss_ratios",
    "assess_plan",
    "assess_pool",
    "assess_cluster",
]


@dataclass(frozen=True)
class ClassPrediction:
    """One class's predicted behaviour under a proposed partitioning."""

    context_key: str
    memory_pages: int
    predicted_miss_ratio: float
    acceptable_miss_ratio: float

    @property
    def meets_acceptable(self) -> bool:
        return self.predicted_miss_ratio <= self.acceptable_miss_ratio + 1e-9


@dataclass
class PlanAssessment:
    """The advisor's verdict on a whole plan."""

    predictions: dict[str, ClassPrediction] = field(default_factory=dict)

    @property
    def all_acceptable(self) -> bool:
        return all(p.meets_acceptable for p in self.predictions.values())

    def failing(self) -> list[str]:
        return sorted(
            key
            for key, prediction in self.predictions.items()
            if not prediction.meets_acceptable
        )


def predict_miss_ratios(
    curves: dict[str, MissRatioCurve],
    quotas: dict[str, int],
    pool_pages: int,
) -> dict[str, float]:
    """Predicted miss ratio of each class under the proposed quotas.

    Classes named in ``quotas`` run in their own partition of that size;
    every other class is evaluated at the shared remainder.
    """
    if pool_pages <= 0:
        raise ValueError(f"pool size must be positive: {pool_pages}")
    reserved = sum(quotas.values())
    if reserved >= pool_pages:
        raise ValueError(
            f"quotas reserve {reserved} of {pool_pages} pages; nothing left "
            "for the shared partition"
        )
    unknown = sorted(set(quotas) - set(curves))
    if unknown:
        raise KeyError(f"no curves for quota'd contexts: {unknown}")
    shared = pool_pages - reserved
    return {
        key: curve.miss_ratio(quotas.get(key, shared))
        for key, curve in curves.items()
    }


def assess_plan(
    curves: dict[str, MissRatioCurve],
    parameters: dict[str, MRCParameters],
    plan: QuotaPlan,
    pool_pages: int,
) -> PlanAssessment:
    """Check a quota plan against every class's acceptable miss ratio."""
    if not plan.feasible:
        raise ValueError("cannot assess an infeasible plan")
    predicted = predict_miss_ratios(curves, plan.quotas, pool_pages)
    assessment = PlanAssessment()
    shared = pool_pages - plan.reserved_pages
    for key, ratio in predicted.items():
        params = parameters.get(key)
        acceptable = params.acceptable_miss_ratio if params else 1.0
        assessment.predictions[key] = ClassPrediction(
            context_key=key,
            memory_pages=plan.quotas.get(key, shared),
            predicted_miss_ratio=ratio,
            acceptable_miss_ratio=acceptable,
        )
    return assessment


# --------------------------------------------------------------------- #
# Cluster scope (the capacity planner's scoring backend)                #
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class PoolAssignment:
    """One buffer pool's proposed contents, as the planner would arrange it.

    ``curves`` may hold full :class:`MissRatioCurve` objects or any object
    with a ``miss_ratio(pages)`` method (the planner passes its sampled
    :class:`~repro.planner.model.CurveSlice` summaries).  ``demands`` and
    ``pressures`` drive the shared-partition contention split; classes
    missing from either fall back to neutral weights.  ``extra_demand``
    accounts for resident classes that were summarised away (they still
    take up room in the shared partition even if they are not scored).
    """

    pool: str
    pool_pages: int
    curves: dict[str, object] = field(default_factory=dict)
    parameters: dict[str, MRCParameters] = field(default_factory=dict)
    quotas: dict[str, int] = field(default_factory=dict)
    demands: dict[str, int] = field(default_factory=dict)
    pressures: dict[str, float] = field(default_factory=dict)
    extra_demand: int = 0


@dataclass
class ClusterAssessment:
    """Per-pool advisor verdicts over a whole proposed cluster state."""

    pools: dict[str, PlanAssessment] = field(default_factory=dict)

    @property
    def all_acceptable(self) -> bool:
        return all(pa.all_acceptable for pa in self.pools.values())

    def failing(self) -> list[tuple[str, str]]:
        """Every (pool, context) pair predicted above its acceptable ratio."""
        return sorted(
            (pool, key)
            for pool, pa in self.pools.items()
            for key in pa.failing()
        )

    def prediction_of(self, context_key: str) -> ClassPrediction | None:
        for pa in self.pools.values():
            if context_key in pa.predictions:
                return pa.predictions[context_key]
        return None


def shared_partition_pages(
    curves: dict[str, object],
    quotas: dict[str, int],
    pool_pages: int,
    demands: dict[str, int] | None = None,
    pressures: dict[str, float] | None = None,
    extra_demand: int = 0,
) -> dict[str, int]:
    """Effective pages each *sharer* (non-quota'd class) gets in one pool.

    When the sharers' combined total-memory demand fits the shared
    remainder, every sharer sees the full remainder (the paper's optimistic
    approximation — they time-share amicably).  When the demand overcommits
    it, each sharer is cut down to a slice proportional to its page
    pressure (falling back to its demand when no pressure is known), capped
    at its own demand.  The slice is a *pessimistic* single-number stand-in
    for LRU competition: it restores the contention signal the optimistic
    model erases, which is exactly what the planner needs to see.
    """
    if pool_pages <= 0:
        raise ValueError(f"pool size must be positive: {pool_pages}")
    reserved = sum(quotas.values())
    if reserved >= pool_pages:
        raise ValueError(
            f"quotas reserve {reserved} of {pool_pages} pages; nothing left "
            "for the shared partition"
        )
    shared = pool_pages - reserved
    demands = demands or {}
    pressures = pressures or {}
    sharers = sorted(key for key in curves if key not in quotas)
    if not sharers:
        return {}

    def demand_of(key: str) -> int:
        known = demands.get(key)
        if known is not None and known > 0:
            return known
        depth = getattr(curves[key], "max_depth", None)
        if depth:
            return min(int(depth), shared)
        return shared

    total_demand = sum(demand_of(key) for key in sharers) + max(extra_demand, 0)
    if total_demand <= shared:
        return {key: shared for key in sharers}
    weights = {key: max(pressures.get(key, 0.0), 0.0) for key in sharers}
    if sum(weights.values()) <= 0.0:
        weights = {key: float(demand_of(key)) for key in sharers}
    total_weight = sum(weights.values())
    # extra (unsummarised) demand competes for the pool too: scale the
    # scored sharers' collective slice down by their share of the demand.
    scored_demand = total_demand - max(extra_demand, 0)
    budget = shared
    if total_demand > 0 and scored_demand < total_demand:
        budget = max(1, int(shared * scored_demand / total_demand))
    return {
        key: min(
            demand_of(key),
            max(1, int(budget * weights[key] / total_weight)),
        )
        for key in sharers
    }


def predict_pool_miss_ratios(
    curves: dict[str, object],
    quotas: dict[str, int],
    pool_pages: int,
    demands: dict[str, int] | None = None,
    pressures: dict[str, float] | None = None,
    extra_demand: int = 0,
) -> dict[str, float]:
    """Contention-aware variant of :func:`predict_miss_ratios`.

    Quota'd classes are evaluated at their quota (exact, as before);
    sharers at their effective shared-partition slice from
    :func:`shared_partition_pages`.
    """
    unknown = sorted(set(quotas) - set(curves))
    if unknown:
        raise KeyError(f"no curves for quota'd contexts: {unknown}")
    effective = shared_partition_pages(
        curves, quotas, pool_pages,
        demands=demands, pressures=pressures, extra_demand=extra_demand,
    )
    return {
        key: curve.miss_ratio(quotas.get(key, effective.get(key, 1)))
        for key, curve in sorted(curves.items())
    }


def assess_pool(assignment: PoolAssignment) -> PlanAssessment:
    """Advisor verdict on one pool of a proposed cluster arrangement."""
    effective = shared_partition_pages(
        assignment.curves,
        assignment.quotas,
        assignment.pool_pages,
        demands=assignment.demands,
        pressures=assignment.pressures,
        extra_demand=assignment.extra_demand,
    )
    assessment = PlanAssessment()
    for key in sorted(assignment.curves):
        pages = assignment.quotas.get(key, effective.get(key, 1))
        params = assignment.parameters.get(key)
        acceptable = params.acceptable_miss_ratio if params else 1.0
        assessment.predictions[key] = ClassPrediction(
            context_key=key,
            memory_pages=pages,
            predicted_miss_ratio=assignment.curves[key].miss_ratio(pages),
            acceptable_miss_ratio=acceptable,
        )
    return assessment


def assess_cluster(
    assignments: dict[str, PoolAssignment],
) -> ClusterAssessment:
    """Assess every pool of a proposed cluster state (planner scoring)."""
    assessment = ClusterAssessment()
    for pool in sorted(assignments):
        assessment.pools[pool] = assess_pool(assignments[pool])
    return assessment
