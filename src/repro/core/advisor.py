"""What-if advisor: predict per-class miss ratios for a quota plan.

The paper's quota heuristic promises that, at the chosen quotas, "the miss
ratios for all QC and the rest of the application queries scheduled on the
same physical server are predicted to be their respective acceptable miss
ratios by the MRC algorithm".  This module makes that prediction a public,
testable API:

* :func:`predict_miss_ratios` evaluates each class's stored curve at the
  memory it would receive under a proposed partitioning (its own quota, or
  the shared remainder), and
* :func:`assess_plan` folds the predictions into a verdict against each
  class's acceptable miss ratio.

Because Mattson curves are exact for LRU, the prediction for a quota'd
class is exact up to trace drift; for classes sharing the default partition
it is optimistic (they compete inside it), which is the same approximation
the paper's heuristic makes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .mrc import MissRatioCurve, MRCParameters
from .quota import QuotaPlan

__all__ = ["ClassPrediction", "PlanAssessment", "predict_miss_ratios", "assess_plan"]


@dataclass(frozen=True)
class ClassPrediction:
    """One class's predicted behaviour under a proposed partitioning."""

    context_key: str
    memory_pages: int
    predicted_miss_ratio: float
    acceptable_miss_ratio: float

    @property
    def meets_acceptable(self) -> bool:
        return self.predicted_miss_ratio <= self.acceptable_miss_ratio + 1e-9


@dataclass
class PlanAssessment:
    """The advisor's verdict on a whole plan."""

    predictions: dict[str, ClassPrediction] = field(default_factory=dict)

    @property
    def all_acceptable(self) -> bool:
        return all(p.meets_acceptable for p in self.predictions.values())

    def failing(self) -> list[str]:
        return sorted(
            key
            for key, prediction in self.predictions.items()
            if not prediction.meets_acceptable
        )


def predict_miss_ratios(
    curves: dict[str, MissRatioCurve],
    quotas: dict[str, int],
    pool_pages: int,
) -> dict[str, float]:
    """Predicted miss ratio of each class under the proposed quotas.

    Classes named in ``quotas`` run in their own partition of that size;
    every other class is evaluated at the shared remainder.
    """
    if pool_pages <= 0:
        raise ValueError(f"pool size must be positive: {pool_pages}")
    reserved = sum(quotas.values())
    if reserved >= pool_pages:
        raise ValueError(
            f"quotas reserve {reserved} of {pool_pages} pages; nothing left "
            "for the shared partition"
        )
    unknown = sorted(set(quotas) - set(curves))
    if unknown:
        raise KeyError(f"no curves for quota'd contexts: {unknown}")
    shared = pool_pages - reserved
    return {
        key: curve.miss_ratio(quotas.get(key, shared))
        for key, curve in curves.items()
    }


def assess_plan(
    curves: dict[str, MissRatioCurve],
    parameters: dict[str, MRCParameters],
    plan: QuotaPlan,
    pool_pages: int,
) -> PlanAssessment:
    """Check a quota plan against every class's acceptable miss ratio."""
    if not plan.feasible:
        raise ValueError("cannot assess an infeasible plan")
    predicted = predict_miss_ratios(curves, plan.quotas, pool_pages)
    assessment = PlanAssessment()
    shared = pool_pages - plan.reserved_pages
    for key, ratio in predicted.items():
        params = parameters.get(key)
        acceptable = params.acceptable_miss_ratio if params else 1.0
        assessment.predictions[key] = ClassPrediction(
            context_key=key,
            memory_pages=plan.quotas.get(key, shared),
            predicted_miss_ratio=ratio,
            acceptable_miss_ratio=acceptable,
        )
    return assessment
