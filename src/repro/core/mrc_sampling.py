"""Spatially-sampled miss-ratio curves (SHARDS-style).

Exact stack-distance analysis is O(N log N) in the trace length, which is
what makes the paper keep MRC recomputation lazy.  Spatial hashed sampling
(Waldspurger et al.'s SHARDS idea) cuts the cost by a constant factor R
while staying statistically faithful:

* a page participates iff ``hash(page) mod M < R * M`` — the *same* pages
  are always sampled, so every reuse pair of a sampled page survives intact;
* the reuse distance observed in the sampled trace underestimates the true
  distance by exactly the sampling rate in expectation, so distances are
  rescaled by ``1/R``;
* miss *ratios* need no count rescaling: each sampled access represents
  ``1/R`` accesses uniformly.

The result is a regular :class:`~repro.core.mrc.MissRatioCurve`, so the
parameter extraction (total/acceptable memory) and the rest of the pipeline
work unchanged.  ``rate=1.0`` degenerates to the exact computation — not
approximately: the sampler short-circuits and the curve is bitwise
identical to :meth:`MissRatioCurve.from_trace`.

**Error bound.** At real rates the extracted parameters (total memory,
acceptable memory) stay within :data:`SAMPLING_ERROR_BOUND` (25%) of the
exact values relative, with an absolute floor of ``64 / rate`` pages —
distance rescaling quantises depths to multiples of ``1/rate``, so small
footprints carry that granularity as irreducible noise.  The bound is
pinned by ``tests/property/test_prop_sampled_mrc.py``; it is what makes a
sampled curve safe to feed the diagnosis, whose own significance test
(``MRCParameters.significantly_differs_from``) also works at the 25%
level.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from .mrc import MissRatioCurve, stack_distances

__all__ = ["SAMPLING_ERROR_BOUND", "SamplingStats", "sample_trace", "sampled_mrc"]

SAMPLING_ERROR_BOUND = 0.25
"""Documented relative error on the extracted MRC parameters at real
sampling rates (with a ``64 / rate``-page absolute floor); see the module
docstring and ``tests/property/test_prop_sampled_mrc.py``."""

_HASH_MODULUS = 1 << 24
_HASH_MULTIPLIER = 0x9E3779B1  # Fibonacci hashing constant


@dataclass(frozen=True)
class SamplingStats:
    """What the sampler kept."""

    rate: float
    input_length: int
    sampled_length: int

    @property
    def effective_rate(self) -> float:
        return self.sampled_length / self.input_length if self.input_length else 0.0


def _page_hashes(pages: np.ndarray, seed: int) -> np.ndarray:
    """A deterministic per-page hash in ``[0, _HASH_MODULUS)``."""
    mixed = (pages.astype(np.uint64) + np.uint64(seed)) * np.uint64(_HASH_MULTIPLIER)
    mixed ^= mixed >> np.uint64(16)
    return (mixed % np.uint64(_HASH_MODULUS)).astype(np.int64)


def sample_trace(
    trace: Sequence[int] | np.ndarray, rate: float, seed: int = 0
) -> tuple[np.ndarray, SamplingStats]:
    """Keep the accesses of pages whose hash falls under ``rate``."""
    if not 0.0 < rate <= 1.0:
        raise ValueError(f"sampling rate must be in (0, 1]: {rate}")
    pages = np.asarray(trace, dtype=np.int64)
    if rate == 1.0:
        return pages, SamplingStats(rate, len(pages), len(pages))
    threshold = int(rate * _HASH_MODULUS)
    kept = pages[_page_hashes(pages, seed) < threshold]
    return kept, SamplingStats(rate, len(pages), len(kept))


def sampled_mrc(
    trace: Sequence[int] | np.ndarray, rate: float = 0.1, seed: int = 0
) -> tuple[MissRatioCurve, SamplingStats]:
    """Approximate MRC from a spatially sampled trace.

    Returns the curve plus the sampling statistics.  At ``rate=1.0`` the
    curve is bit-identical to :meth:`MissRatioCurve.from_trace`.
    """
    kept, stats = sample_trace(trace, rate, seed)
    distances = stack_distances(kept)
    cold = int(np.count_nonzero(distances == 0))
    warm = distances[distances > 0]
    if rate < 1.0 and len(warm):
        # Rescale sampled distances back to full-trace stack depths.
        warm = np.maximum(1, np.round(warm / rate)).astype(np.int64)
    max_depth = int(warm.max()) if len(warm) else 0
    hits = np.bincount(warm, minlength=max_depth + 1)
    return MissRatioCurve(hits, cold), stats
