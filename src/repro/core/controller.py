"""The cluster controller: monitoring loop + action application.

The controller closes the paper's feedback loop.  Once per measurement
interval it:

1. closes every scheduler's SLA accounting and every host's load model,
2. lets every decision manager drain its engines' statistics logs
   (refreshing stable-state signatures for applications that met their SLA),
3. runs the diagnosis procedure for every application in violation, and
4. applies the resulting actions to the cluster — provisioning replicas,
   enforcing buffer-pool quotas, or rescheduling query classes.

Fine-grained retuning can be disabled (``fine_grained=False``) to obtain the
coarse-only baseline the ablation benches compare against: every violation
then goes straight to replica provisioning / application isolation.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from .analyzer import DecisionManager, LogAnalyzer
from ..cluster.replica import Replica
from ..cluster.resource_manager import ResourceManager
from ..cluster.scheduler import AppIntervalMetrics, Scheduler
from ..obs import NULL_OBS, Observability
from .diagnosis import (
    Action,
    ActionKind,
    Diagnosis,
    DiagnosisConfig,
    ReplicaView,
    diagnose,
)

__all__ = ["ControllerConfig", "AppIntervalReport", "ClusterController"]


@dataclass(frozen=True)
class ControllerConfig:
    """Controller tunables."""

    interval_length: float = 10.0
    fine_grained: bool = True
    fallback_patience: int = 3
    action_grace_intervals: int = 2
    startup_grace_intervals: int = 2
    scale_down: bool = False
    scale_down_cpu_threshold: float = 0.25
    scale_down_patience: int = 2
    mrc_sampling_rate: float = 1.0
    """SHARDS-style spatial sampling rate for MRC recomputation during
    diagnosis: 1.0 (default) runs the exact stack-distance analysis, lower
    rates analyse only the hashed subset of pages and rescale distances
    (see :mod:`repro.core.mrc_sampling`), cutting the recompute cost by
    roughly the same factor."""
    use_planner: bool = False
    """Route violations through the global capacity planner
    (:mod:`repro.planner`) instead of the single-server quota path.  Off by
    default: the flag must not change a byte of the classic behaviour."""
    planner_seed: int = 0
    use_forecast: bool = False
    """Predictive SLA enforcement (:mod:`repro.forecast`): learn per-class
    and per-app dynamics online and fire the capacity planner against a
    *predicted* snapshot before the forecast violation lands.  Off by
    default, same byte-identical contract as ``use_planner``; the reactive
    path stays armed behind the forecast either way."""
    forecast_horizon: int = 2
    """Intervals ahead the forecaster projects (and the window within which
    a predicted violation must materialise to count as a hit)."""
    forecast_seed: int = 0
    """Seed for planner searches fired by the forecaster (and stamped on
    every forecast record)."""
    forecast_margin: float = 1.0
    """Predicted latency must exceed ``forecast_margin * sla_latency``
    before the act-ahead policy may fire (below 1.0 = act earlier)."""
    diagnosis: DiagnosisConfig = field(default_factory=DiagnosisConfig)

    def __post_init__(self) -> None:
        if self.interval_length <= 0:
            raise ValueError("interval length must be positive")
        if self.fallback_patience < 1:
            raise ValueError("fallback patience must be at least 1")
        if self.action_grace_intervals < 0:
            raise ValueError("action grace must be non-negative")
        if self.startup_grace_intervals < 0:
            raise ValueError("startup grace must be non-negative")
        if not 0 < self.scale_down_cpu_threshold < 1:
            raise ValueError("scale-down threshold must be in (0, 1)")
        if self.scale_down_patience < 1:
            raise ValueError("scale-down patience must be at least 1")
        if not 0 < self.mrc_sampling_rate <= 1:
            raise ValueError("MRC sampling rate must be in (0, 1]")
        if self.forecast_horizon < 1:
            raise ValueError("forecast horizon must be at least 1")
        if self.forecast_margin <= 0:
            raise ValueError("forecast margin must be positive")


@dataclass
class AppIntervalReport:
    """What happened to one application during one interval."""

    app: str
    interval_index: int
    timestamp: float
    mean_latency: float
    throughput: float
    sla_met: bool
    actions: list[Action] = field(default_factory=list)


class ClusterController:
    """Owns the monitoring/diagnosis/actuation loop of one cluster."""

    def __init__(
        self,
        resource_manager: ResourceManager,
        config: ControllerConfig | None = None,
        obs: Observability | None = None,
    ) -> None:
        self.resource_manager = resource_manager
        self.config = config if config is not None else ControllerConfig()
        self.obs = obs if obs is not None else NULL_OBS
        self.schedulers: dict[str, Scheduler] = {}
        self._hosts: dict[str, object] = {}
        self._decision_managers: dict[str, DecisionManager] = {}
        self._violation_streak: dict[str, int] = {}
        self._low_util_streak: dict[str, int] = {}
        self._last_action_interval: dict[str, int] = {}
        self._fine_action_tried: dict[str, bool] = {}
        self.reports: list[AppIntervalReport] = []
        self.diagnoses: list[Diagnosis] = []
        self.plans: list = []  # CapacityPlans, when use_planner is on
        self.forecaster = None  # ForecastEngine, when use_forecast is on
        self._interval_index = 0
        # Recovery hooks, installed by the ControlPlaneSupervisor when the
        # harness enables recovery.  Both None by default: the classic
        # actuation path then runs with zero extra work or telemetry.
        self.fence = None  # EpochFence shared with schedulers/ResourceManager
        self.journal = None  # ActionJournal (write-ahead action log)

    @property
    def interval_index(self) -> int:
        """Index of the next measurement interval to close."""
        return self._interval_index

    def violation_streak(self, app: str) -> int:
        """Consecutive intervals ``app`` has violated its SLA (0 = met)."""
        return self._violation_streak.get(app, 0)

    # ------------------------------------------------------------------ #
    # Wiring                                                             #
    # ------------------------------------------------------------------ #

    def add_scheduler(self, scheduler: Scheduler) -> None:
        if scheduler.app in self.schedulers:
            raise ValueError(f"app {scheduler.app!r} already has a scheduler")
        scheduler.interval_length = self.config.interval_length
        scheduler.obs = self.obs
        if self.fence is not None:
            scheduler.fence = self.fence
        self.schedulers[scheduler.app] = scheduler
        for replica in scheduler.replicas.values():
            self.track_replica(replica)

    def register_host(self, host) -> None:
        """Track a host whose load model must be closed each interval.

        ``host`` is anything with ``close_interval(interval_length)`` — a
        :class:`PhysicalServer` or a :class:`XenHost` (which closes its VMs).
        """
        self._hosts.setdefault(self._host_key(host), host)

    @staticmethod
    def _host_key(host) -> str:
        name = getattr(host, "name", None)
        if name is None:  # XenHost exposes its server's name
            name = host.server.name
        return str(name)

    def track_replica(self, replica: Replica) -> LogAnalyzer:
        """Attach a replica's engine to its server's decision manager."""
        host_name = replica.host.name
        manager = self._decision_managers.get(host_name)
        if manager is None:
            manager = DecisionManager(
                server_name=host_name,
                obs=self.obs,
                mrc_sampling_rate=self.config.mrc_sampling_rate,
            )
            self._decision_managers[host_name] = manager
        self.register_host(replica.host)
        self.resource_manager.register_existing(replica)
        return manager.attach_engine(replica.engine)

    def analyzer_of(self, replica: Replica) -> LogAnalyzer:
        manager = self._decision_managers[replica.host.name]
        return manager.analyzer_for(replica.engine.name)

    def analyzers(self) -> list[LogAnalyzer]:
        """Every log analyzer in the cluster, sorted by server then engine.

        The fault injector uses this to find the analyzers monitoring a
        target engine; tests and dashboards use it to inspect quarantine
        state without knowing the replica topology.
        """
        return [
            analyzer
            for server in sorted(self._decision_managers)
            for analyzer in self._decision_managers[server].analyzers()
        ]

    # ------------------------------------------------------------------ #
    # The interval loop                                                  #
    # ------------------------------------------------------------------ #

    def close_interval(self, timestamp: float) -> list[AppIntervalReport]:
        """Process one measurement-interval boundary; returns app reports."""
        length = self.config.interval_length
        tracer = self.obs.tracer
        registry = self.obs.registry
        with tracer.span(
            "controller.interval",
            attrs={"interval": self._interval_index},
            start=max(timestamp - length, 0.0),
        ):
            app_metrics: dict[str, AppIntervalMetrics] = {}
            sla_met: dict[str, bool] = {}
            for app, scheduler in self.schedulers.items():
                if scheduler.async_replication:
                    scheduler.drain_pending(timestamp)
                metrics = scheduler.close_interval()
                app_metrics[app] = metrics
                sla_met[app] = metrics.sla_met(scheduler.sla_latency)

            for host in self._hosts.values():
                host.close_interval(length)

            for manager in self._decision_managers.values():
                manager.close_interval(length, sla_met, timestamp)

            if self.config.use_forecast:
                self._observe_forecasts(app_metrics, sla_met)

            reports: list[AppIntervalReport] = []
            for app in sorted(self.schedulers):
                metrics = app_metrics[app]
                report = AppIntervalReport(
                    app=app,
                    interval_index=self._interval_index,
                    timestamp=timestamp,
                    mean_latency=metrics.mean_latency,
                    throughput=metrics.throughput,
                    sla_met=sla_met[app],
                )
                if sla_met[app]:
                    self._violation_streak[app] = 0
                    if self.config.use_forecast:
                        report.actions = self._forecast_react(app, timestamp)
                    if self.config.scale_down:
                        self._maybe_scale_down(app, timestamp)
                elif metrics.queries > 0:
                    self._violation_streak[app] = (
                        self._violation_streak.get(app, 0) + 1
                    )
                    if self.config.use_forecast:
                        report.actions = self._forecast_react(
                            app, timestamp, violating=True
                        )
                    else:
                        report.actions = self._react(app, timestamp)
                for action in report.actions:
                    registry.counter(
                        "controller.actions", app=app, kind=action.kind.value
                    ).inc()
                reports.append(report)
            registry.counter("controller.intervals").inc()
        self.reports.extend(reports)
        self._interval_index += 1
        return reports

    # ------------------------------------------------------------------ #
    # Scale-down (release replicas when the load recedes)                #
    # ------------------------------------------------------------------ #

    def _maybe_scale_down(self, app: str, timestamp: float) -> None:
        """Release the newest replica after sustained low CPU utilisation.

        Mirrors the provisioning direction of the paper's Figure 3: the
        machine allocation tracks the sinusoid load both up and down.
        """
        scheduler = self.schedulers[app]
        if len(scheduler.replicas) <= 1:
            self._low_util_streak[app] = 0
            return
        utilisations = [
            getattr(replica.host, "cpu_utilisation", 1.0)
            for replica in scheduler.replicas.values()
        ]
        if max(utilisations) < self.config.scale_down_cpu_threshold:
            self._low_util_streak[app] = self._low_util_streak.get(app, 0) + 1
        else:
            self._low_util_streak[app] = 0
            return
        if self._low_util_streak[app] >= self.config.scale_down_patience:
            newest = list(scheduler.replicas)[-1]  # insertion order = age
            self.resource_manager.release_replica(scheduler, newest, timestamp)
            self._low_util_streak[app] = 0

    # ------------------------------------------------------------------ #
    # Reaction                                                           #
    # ------------------------------------------------------------------ #

    def _react(self, app: str, timestamp: float) -> list[Action]:
        # Cold-start grace: violations in the first intervals after launch
        # come from an empty buffer pool, not from a real change.
        if self._interval_index < self.config.startup_grace_intervals:
            return []
        # Grace period: the previous action needs a warm-up window before
        # its effect is measurable; reacting every interval causes thrashing
        # (each pool rebuild restarts cold and re-violates the SLA).
        last_action = self._last_action_interval.get(app)
        if (
            last_action is not None
            and self._interval_index - last_action
            <= self.config.action_grace_intervals
        ):
            return []
        # Degraded evidence: a quarantined statistics window means the
        # interval's vectors are missing or corrupt.  Acting on them would
        # retune the cluster off garbage, so the controller sits the round
        # out and retries next interval with (hopefully) clean evidence.
        degraded = self._degraded_evidence(app)
        if degraded is not None:
            registry = self.obs.registry
            if registry.enabled:
                registry.counter(
                    "controller.degraded_skips", app=app, reason=degraded
                ).inc()
            return []
        scheduler = self.schedulers[app]
        views = self._views_of(app)
        if not self.config.fine_grained:
            action = Action(
                kind=ActionKind.COARSE_FALLBACK,
                app=app,
                reason="fine-grained retuning disabled (coarse-only baseline)",
            )
            with self.obs.tracer.span(
                "actions.apply", attrs={"app": app, "kinds": action.kind.value}
            ) as span:
                applied = self._apply(action, timestamp)
                span.set_attr("applied", int(applied))
                span.add_cost(1)
            return [action]

        if self.config.use_planner:
            return self._react_with_planner(app, timestamp)

        diagnosis = diagnose(
            app, scheduler, views, self.config.diagnosis, obs=self.obs
        )
        self.diagnoses.append(diagnosis)
        actions = list(diagnosis.actions)
        streak = self._violation_streak.get(app, 0)
        fine_kinds = {
            ActionKind.APPLY_QUOTAS,
            ActionKind.RESCHEDULE_CLASS,
            ActionKind.REMOVE_CLASS_FOR_IO,
            ActionKind.REPORT_LOCK_CONTENTION,
        }
        # The diagnosis itself escalates to COARSE_FALLBACK when it finds
        # nothing actionable; here the controller additionally escalates when
        # fine-grained actions were *tried* and the SLA is still violated
        # past the patience budget, or when diagnosis has been inconclusive
        # for much longer (it may legitimately wait for window coverage).
        tried_fine = self._fine_action_tried.get(app, False)
        exhausted = (streak > self.config.fallback_patience and tried_fine) or (
            streak > 2 * self.config.fallback_patience + 2
        )
        if exhausted and all(
            a.kind in fine_kinds or a.kind is ActionKind.NO_ACTION for a in actions
        ):
            actions = [
                Action(
                    kind=ActionKind.COARSE_FALLBACK,
                    app=app,
                    reason=(
                        f"SLA still violated after {streak} intervals of "
                        "fine-grained retuning"
                    ),
                )
            ]
        if any(a.kind in fine_kinds for a in actions):
            self._fine_action_tried[app] = True
        with self.obs.tracer.span(
            "actions.apply",
            attrs={
                "app": app,
                "kinds": ",".join(sorted({a.kind.value for a in actions})),
            },
        ) as span:
            applied = [a for a in actions if self._apply(a, timestamp)]
            span.set_attr("applied", len(applied))
            span.add_cost(len(actions))
        if applied:
            self._last_action_interval[app] = self._interval_index
        return actions

    # ------------------------------------------------------------------ #
    # Planner-driven reaction (ControllerConfig.use_planner)             #
    # ------------------------------------------------------------------ #

    def _react_with_planner(self, app: str, timestamp: float) -> list[Action]:
        """Ask the global capacity planner instead of the quota path."""
        # Imported lazily: the planner depends on core, so a module-level
        # import would be a cycle — and the default path never needs it.
        from ..planner import PlannerConfig, build_snapshot, search_plan

        registry = self.obs.registry
        with self.obs.tracer.span(
            "planner.plan", attrs={"app": app}
        ) as span:
            snapshot = build_snapshot(self, app=app, obs=self.obs)
            plan = search_plan(
                snapshot,
                PlannerConfig(seed=self.config.planner_seed),
                obs=self.obs,
            )
            span.set_attr("steps", len(plan.steps))
        self.plans.append(plan)
        if registry.enabled:
            registry.counter("planner.plans", app=app).inc()
        streak = self._violation_streak.get(app, 0)
        if plan.empty:
            # Same escalation contract as the fine-grained path: a planner
            # with no improving move left is "fine-grained exhausted".
            exhausted = (
                streak > self.config.fallback_patience
                and self._fine_action_tried.get(app, False)
            ) or streak > 2 * self.config.fallback_patience + 2
            if not exhausted:
                return []
            action = Action(
                kind=ActionKind.COARSE_FALLBACK,
                app=app,
                reason=(
                    f"planner found no improving move after {streak} "
                    "intervals of violation"
                ),
            )
            with self.obs.tracer.span(
                "actions.apply",
                attrs={"app": app, "kinds": action.kind.value},
            ) as span:
                applied = self._apply(action, timestamp)
                span.set_attr("applied", int(applied))
                span.add_cost(1)
            if applied:
                self._last_action_interval[app] = self._interval_index
            return [action]
        actions = self.apply_plan(plan, timestamp)
        if actions:
            self._last_action_interval[app] = self._interval_index
            self._fine_action_tried[app] = True
        return actions

    # ------------------------------------------------------------------ #
    # Predictive reaction (ControllerConfig.use_forecast)                #
    # ------------------------------------------------------------------ #

    def _observe_forecasts(
        self,
        app_metrics: dict[str, AppIntervalMetrics],
        sla_met: dict[str, bool],
    ) -> None:
        """Feed the closed interval to the forecast engine.

        Called once per interval, before the report loop, so the engine's
        forecasts already include this interval's measurements when
        :meth:`_forecast_react` consults them.  Also resolves any act-ahead
        predictions whose windows this interval closes.
        """
        # Lazy for the same reason as the planner: forecast depends on the
        # planner's model, and the default path never needs either.
        from ..forecast import (
            AppObservation,
            ClassObservation,
            ForecastConfig,
            ForecastEngine,
            PolicyConfig,
        )
        from .metrics import Metric

        if self.forecaster is None:
            self.forecaster = ForecastEngine(
                ForecastConfig(
                    horizon=self.config.forecast_horizon,
                    seed=self.config.forecast_seed,
                ),
                PolicyConfig(margin=self.config.forecast_margin),
            )
        apps = [
            AppObservation(
                app=app,
                mean_latency=app_metrics[app].mean_latency,
                throughput=app_metrics[app].throughput,
                sla_latency=self.schedulers[app].sla_latency,
                violated=not sla_met[app],
            )
            for app in sorted(app_metrics)
        ]
        # Cluster-wide per-class counters: one class may span engines, so
        # sum its accesses/misses/readaheads/throughput across analyzers.
        sums: dict[str, list[float]] = {}
        for analyzer in self.analyzers():
            for key, vector in analyzer.effective_vectors().items():
                total = sums.setdefault(key, [0.0, 0.0, 0.0, 0.0])
                total[0] += vector.get(Metric.PAGE_ACCESSES)
                total[1] += vector.get(Metric.MISSES)
                total[2] += vector.get(Metric.READAHEADS)
                total[3] += vector.get(Metric.THROUGHPUT)
        classes = []
        for key in sorted(sums):
            accesses, misses, readaheads, throughput = sums[key]
            # Same semantics as the what-if validator: readaheads are
            # demand I/O the pool failed to absorb.
            ratio = (misses + readaheads) / accesses if accesses > 0 else 0.0
            classes.append(
                ClassObservation(
                    context_key=key,
                    miss_ratio=min(ratio, 1.0),
                    pressure=accesses,
                    arrival_rate=throughput,
                )
            )
        with self.obs.tracer.span(
            "forecast.tick",
            attrs={"interval": self._interval_index, "classes": len(classes)},
        ):
            self.forecaster.observe_interval(
                self._interval_index, apps, classes
            )
        registry = self.obs.registry
        if registry.enabled:
            for app, forecast in self.forecaster.app_forecasts().items():
                registry.gauge("forecast.predicted_latency", app=app).set(
                    forecast.mean_latency
                )
                registry.gauge("forecast.confidence", app=app).set(
                    forecast.confidence
                )
            registry.gauge("forecast.budget_remaining").set(
                self.forecaster.policy.budget
            )

    def _forecast_react(
        self, app: str, timestamp: float, violating: bool = False
    ) -> list[Action]:
        """Act ahead of a *predicted* violation.

        Two cases share the same forecast/policy/planner machinery:

        * ``violating=False`` — the app currently meets its SLA but the
          forecast says it won't for long: fire the planner against the
          predicted snapshot so the fix lands before the breach.
        * ``violating=True`` — the app is already violating and the
          forecast says the violation *persists* beyond the horizon: skip
          the reactive path's fine-grained patience ladder and go straight
          to the capacity planner, sparing the intervals the ladder would
          have burned.  When the forecast is cold, low-confidence, or
          predicts recovery, this falls back to the classic reactive path
          unchanged (the confidence/fallback contract).

        Reuses the reactive path's guards — startup grace, post-action
        grace, quarantined evidence — before the forecast is even
        consulted, so predictive action can never thrash where reactive
        action would have held back.  A grace-skipped interval emits no
        forecast record: nothing was predicted on.
        """

        def fallback() -> list[Action]:
            return self._react(app, timestamp) if violating else []

        if self.forecaster is None:
            return fallback()
        if self._interval_index < self.config.startup_grace_intervals:
            return fallback()
        last_action = self._last_action_interval.get(app)
        if (
            last_action is not None
            and self._interval_index - last_action
            <= self.config.action_grace_intervals
        ):
            return fallback()
        if self._degraded_evidence(app) is not None:
            return fallback()
        if self.schedulers[app].health.any_down:
            # Mid-failover the topology the forecaster learned no longer
            # exists; planning against it only thrashes the survivors.
            # Hold predictive fire until the cluster is whole again.
            return fallback()
        decision, forecast = self.forecaster.consider(
            app, self._interval_index
        )
        if not decision.act or forecast is None:
            return fallback()
        from ..forecast import predicted_snapshot
        from ..planner import PlannerConfig, build_snapshot, search_plan

        registry = self.obs.registry
        with self.obs.tracer.span(
            "forecast.plan",
            attrs={"app": app, "horizon": forecast.horizon},
        ) as span:
            snapshot = build_snapshot(self, app=app, obs=self.obs)
            predicted = predicted_snapshot(
                snapshot,
                forecast.horizon,
                self.forecaster.app_forecasts(),
                self.forecaster.class_forecasts(),
            )
            plan = search_plan(
                predicted,
                PlannerConfig(seed=self.config.forecast_seed),
                obs=self.obs,
            )
            span.set_attr("steps", len(plan.steps))
        self.plans.append(plan)
        if registry.enabled:
            registry.counter("forecast.plans", app=app).inc()
        if plan.empty:
            # No fine-grained move improves the predicted snapshot, but the
            # violation forecast stands: scale out ahead of the breach (the
            # PerfEnforce move).  The predicted latency comes from the whole
            # app, not one class, so added capacity is the remaining lever.
            action = Action(
                kind=ActionKind.PROVISION_REPLICA,
                app=app,
                reason=(
                    f"forecast: predicted latency "
                    f"{decision.predicted_latency:.3f} > threshold "
                    f"{decision.threshold:.3f}, no fine-grained move"
                ),
            )
            with self.obs.tracer.span(
                "actions.apply",
                attrs={"app": app, "kinds": action.kind.value},
            ) as span:
                applied = self._apply(action, timestamp)
                span.set_attr("applied", int(applied))
                span.add_cost(1)
            if not applied:
                # Server pool exhausted: nothing we can do ahead of time.
                self.forecaster.note_empty_plan(app, self._interval_index)
                return fallback()
            self._last_action_interval[app] = self._interval_index
            self.forecaster.note_scale_out()
            return [action]
        actions = self.apply_plan(plan, timestamp)
        if actions:
            self._last_action_interval[app] = self._interval_index
            self._fine_action_tried[app] = True
            self.forecaster.note_plan_applied()
            return actions
        # Every step no-opped at apply time (quota within the thrash
        # guard, class already placed): nothing changed, so treat it
        # like an empty plan and refund the act-ahead token.
        self.forecaster.note_empty_plan(app, self._interval_index)
        return fallback()

    def apply_plan(self, plan, timestamp: float) -> list[Action]:
        """Actuate a :class:`~repro.planner.plan.CapacityPlan`.

        Steps are applied in plan order; ADD_REPLICA steps materialise the
        plan's placeholder pools and later steps resolve against the engines
        they created.  Returns the actions actually applied (releases follow
        the scale-down precedent and emit no action).
        """
        from ..planner.plan import PlanStepKind

        placeholder_engines: dict[str, str] = {}
        actions: list[Action] = []
        with self.obs.tracer.span(
            "planner.apply", attrs={"steps": len(plan.steps)}
        ) as span:
            for step in plan.steps:
                action = self._apply_plan_step(
                    step, PlanStepKind, placeholder_engines, timestamp
                )
                if action is not None:
                    actions.append(action)
            span.set_attr("applied", len(actions))
            span.add_cost(len(plan.steps))
        return actions

    def _engine_replica(self, engine_name: str, app: str | None = None):
        """(scheduler, replica) serving ``engine_name``, optionally for one
        application.  Raises ``KeyError`` when no replica matches."""
        for name in sorted(self.schedulers):
            if app is not None and name != app:
                continue
            scheduler = self.schedulers[name]
            for replica_name in scheduler.replica_names():
                replica = scheduler.replicas[replica_name]
                if replica.engine.name == engine_name:
                    return scheduler, replica
        raise KeyError(
            f"no replica of {app or 'any app'} serves engine {engine_name!r}"
        )

    def _apply_plan_step(
        self, step, kinds, placeholder_engines: dict[str, str], timestamp: float
    ) -> Action | None:
        if step.kind is kinds.ADD_REPLICA:
            scheduler = self.schedulers[step.app]
            pool_pages = max(
                (
                    replica.engine.pool_pages
                    for replica in scheduler.replicas.values()
                ),
                default=8192,
            )
            try:
                replica = self.resource_manager.allocate_replica(
                    scheduler,
                    timestamp,
                    pool_pages=pool_pages,
                    server=step.server,
                )
            except (RuntimeError, KeyError):
                return None  # server taken since planning; skip the branch
            self.track_replica(replica)
            placeholder_engines[step.pool] = replica.engine.name
            return Action(
                kind=ActionKind.PROVISION_REPLICA,
                app=step.app,
                reason=f"planner: {step.rationale}",
                replica=replica.name,
            )
        if step.kind is kinds.MIGRATE_CLASS:
            engine_name = placeholder_engines.get(step.pool, step.pool)
            try:
                scheduler, replica = self._engine_replica(
                    engine_name, app=step.app
                )
            except KeyError:
                return None  # target pool never materialised
            if scheduler.placement_of(step.context_key) == [replica.name]:
                return None  # already exactly there
            scheduler.move_class(step.context_key, replica.name)
            return Action(
                kind=ActionKind.RESCHEDULE_CLASS,
                app=step.app,
                reason=f"planner: {step.rationale}",
                replica=replica.name,
                context_key=step.context_key,
            )
        if step.kind is kinds.SET_QUOTA:
            engine_name = placeholder_engines.get(step.pool, step.pool)
            try:
                _, replica = self._engine_replica(engine_name)
            except KeyError:
                return None
            current = replica.engine.quotas.get(step.context_key)
            # Same thrash guard as the quota path: re-imposing a
            # near-identical quota only cold-restarts the partition.
            if current is not None and abs(step.pages - current) <= 0.15 * current:
                return None
            replica.engine.set_quota(step.context_key, step.pages)
            return Action(
                kind=ActionKind.APPLY_QUOTAS,
                app=step.app,
                reason=f"planner: {step.rationale}",
                replica=replica.name,
                quotas=((step.context_key, step.pages),),
            )
        if step.kind is kinds.CLEAR_QUOTA:
            engine_name = placeholder_engines.get(step.pool, step.pool)
            try:
                _, replica = self._engine_replica(engine_name)
            except KeyError:
                return None
            if step.context_key not in replica.engine.quotas:
                return None
            replica.engine.clear_quota(step.context_key)
            return Action(
                kind=ActionKind.APPLY_QUOTAS,
                app=step.app,
                reason=f"planner: {step.rationale}",
                replica=replica.name,
            )
        if step.kind is kinds.RELEASE_REPLICA:
            # Mirrors _maybe_scale_down: releases change the allocation
            # timeline (ResourceManager.history) but emit no Action.
            try:
                scheduler, replica = self._engine_replica(
                    step.pool, app=step.app
                )
            except KeyError:
                return None
            if len(scheduler.replicas) <= 1:
                return None
            self.resource_manager.release_replica(
                scheduler, replica.name, timestamp
            )
            return None
        return None

    def _degraded_evidence(self, app: str) -> str | None:
        """The quarantine reason when any analyzer serving ``app`` closed a
        degraded window this interval (``None`` = evidence is trustworthy)."""
        scheduler = self.schedulers[app]
        for name in scheduler.replica_names():
            replica = scheduler.replicas[name]
            try:
                analyzer = self.analyzer_of(replica)
            except KeyError:
                continue
            if analyzer.degraded_last_interval is not None:
                return analyzer.degraded_last_interval
        return None

    def _views_of(self, app: str) -> list[ReplicaView]:
        scheduler = self.schedulers[app]
        views = []
        for name in scheduler.replica_names():
            replica = scheduler.replicas[name]
            analyzer = self.analyzer_of(replica)
            host = replica.host
            views.append(
                ReplicaView(
                    replica_name=name,
                    analyzer=analyzer,
                    cpu_saturated=bool(getattr(host, "cpu_saturated", False)),
                    io_saturated=bool(getattr(host, "io_saturated", False)),
                    pool_pages=replica.engine.pool_pages,
                    interval_length=self.config.interval_length,
                )
            )
        return views

    def apply_action(self, action: Action, timestamp: float) -> bool:
        """Epoch-checked, journaled actuation (the public apply path).

        Without recovery installed this is plain actuation.  With a fence,
        an unstamped action (epoch 0) is stamped with the current epoch; a
        stale one — decided by a crashed incarnation — is journaled as
        ``fenced`` and rejected without touching the cluster.  Anything
        admitted is journaled write-ahead (``intent``) before actuating
        and confirmed (``applied``) after, so a crash at any point leaves
        enough evidence for the restart reconcile pass.
        """
        if self.fence is None:
            return self._actuate(action, timestamp)
        if action.epoch == 0:
            action = replace(action, epoch=self.fence.epoch)
        if not self.fence.admits(action.epoch):
            self.fence.rejections += 1
            if self.journal is not None:
                self.journal.record_fenced(
                    action, action.epoch, self._interval_index, timestamp
                )
            return False
        if self.journal is not None:
            self.journal.record_intent(
                action, action.epoch, self._interval_index, timestamp
            )
        applied = self._actuate(action, timestamp)
        if self.journal is not None:
            self.journal.record_applied(
                action, action.epoch, self._interval_index, timestamp, applied
            )
        return applied

    def _apply(self, action: Action, timestamp: float) -> bool:
        return self.apply_action(action, timestamp)

    def _actuate(self, action: Action, timestamp: float) -> bool:
        """Actuate one action; returns whether anything actually changed."""
        scheduler = self.schedulers[action.app]
        if action.kind is ActionKind.PROVISION_REPLICA:
            return self._provision(scheduler, timestamp) is not None
        if action.kind is ActionKind.APPLY_QUOTAS:
            replica = scheduler.replicas[action.replica]
            changed = False
            existing = replica.engine.quotas
            for context, pages in action.quota_map().items():
                current = existing.get(context)
                # Re-imposing a near-identical quota only cold-restarts the
                # partitions; treat within-15% proposals as already applied.
                if current is not None and abs(pages - current) <= 0.15 * current:
                    continue
                replica.engine.set_quota(context, pages)
                changed = True
            return changed
        if action.kind in (
            ActionKind.RESCHEDULE_CLASS,
            ActionKind.REMOVE_CLASS_FOR_IO,
        ):
            # The context may belong to a *different* application than the
            # violated one (cross-application memory interference): move it
            # within its owner's scheduler, away from the contended host.
            owner_app = action.context_key.split("/", 1)[0]
            owner_scheduler = self.schedulers.get(owner_app)
            if owner_scheduler is None:
                return False
            avoid_host = scheduler.replicas[action.replica].host.name
            return self._reschedule(
                owner_scheduler, action.context_key, avoid_host, timestamp
            )
        if action.kind is ActionKind.REPORT_LOCK_CONTENTION:
            # Nothing to actuate — the report itself is the outcome (it names
            # the aggressor class and any deadlock-prone cycles for the
            # operator).  Counting it as applied spaces repeat reports by the
            # action-grace window.
            return True
        if action.kind is ActionKind.COARSE_FALLBACK:
            return self._provision(scheduler, timestamp, exclusive=True) is not None
        return False  # NO_ACTION applies nothing.

    def _provision(
        self, scheduler: Scheduler, timestamp: float, exclusive: bool = False
    ) -> Replica | None:
        try:
            replica = self.resource_manager.allocate_replica(
                scheduler, timestamp, exclusive=exclusive
            )
        except RuntimeError:
            return None  # pool exhausted; nothing to do
        self.track_replica(replica)
        return replica

    def _reschedule(
        self,
        scheduler: Scheduler,
        context_key: str | None,
        avoid_host: str | None,
        timestamp: float,
    ) -> bool:
        if context_key is None:
            return False
        candidates = [
            name
            for name in scheduler.replica_names()
            if avoid_host is None
            or scheduler.replicas[name].host.name != avoid_host
        ]
        if not candidates:
            replica = self._provision(scheduler, timestamp)
            if replica is None:
                return False
            candidates = [replica.name]
        current = scheduler.placement_of(context_key)
        if len(current) == 1 and current[0] in candidates:
            return False  # already isolated off the contended host
        # Least-crowded target: fewest classes currently pinned there.
        pinned_counts = {name: 0 for name in candidates}
        for targets in scheduler.pinned_contexts().values():
            for name in targets:
                if name in pinned_counts:
                    pinned_counts[name] += 1
        target = min(candidates, key=lambda name: (pinned_counts[name], name))
        scheduler.move_class(context_key, target)
        return True

    # ------------------------------------------------------------------ #
    # Reporting                                                          #
    # ------------------------------------------------------------------ #

    def app_timeline(self, app: str) -> list[AppIntervalReport]:
        return [report for report in self.reports if report.app == app]

    def actions_taken(self, app: str | None = None) -> list[Action]:
        actions = []
        for report in self.reports:
            for action in report.actions:
                if app is None or action.app == app:
                    actions.append(action)
        return actions
