"""Outlier context detection — the paper's central statistical step.

Upon an application-level SLA violation, for each server running the
application (paper §3.3.1):

1. divide each query class's current metric value by its last recorded
   stable average,
2. multiply by the class's *weight* for that metric — the metric value
   normalised to the least value across all classes for the same metric —
   giving the **metric impact value** (a change matters more in a query
   that is heavyweight for that metric),
3. run classic IQR fences over the impact values of all classes:
   values outside ``[Q1 - 1.5*IQR, Q3 + 1.5*IQR]`` (the inner fence) are
   **mild** outliers, values outside ``[Q1 - 3*IQR, Q3 + 3*IQR]`` (the
   outer fence) are **extreme** outliers.

Query contexts containing any outlier metric are the *outlier contexts*
driving diagnosis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

import numpy as np

from .metrics import MEMORY_METRICS, Metric, MetricVector

__all__ = [
    "Severity",
    "Fences",
    "OutlierPoint",
    "OutlierReport",
    "compute_weights",
    "compute_impact_values",
    "iqr_fences",
    "detect_outliers",
    "top_k_heavyweight",
]


class Severity(str, Enum):
    """Outlier severity per the inner/outer IQR fences."""

    MILD = "mild"
    EXTREME = "extreme"


@dataclass(frozen=True)
class Fences:
    """IQR fences of one metric's impact-value distribution."""

    q1: float
    q3: float

    @property
    def iqr(self) -> float:
        return self.q3 - self.q1

    @property
    def inner(self) -> tuple[float, float]:
        return (self.q1 - 1.5 * self.iqr, self.q3 + 1.5 * self.iqr)

    @property
    def outer(self) -> tuple[float, float]:
        return (self.q1 - 3.0 * self.iqr, self.q3 + 3.0 * self.iqr)

    def classify(self, value: float) -> Severity | None:
        """Severity of ``value``, or ``None`` when inside the inner fence."""
        outer_low, outer_high = self.outer
        if value < outer_low or value > outer_high:
            return Severity.EXTREME
        inner_low, inner_high = self.inner
        if value < inner_low or value > inner_high:
            return Severity.MILD
        return None


@dataclass(frozen=True)
class OutlierPoint:
    """One outlier metric impact value in one query context."""

    context_key: str
    metric: Metric
    impact: float
    severity: Severity


@dataclass
class OutlierReport:
    """Everything the detector produced for one (server, application) pair."""

    points: list[OutlierPoint] = field(default_factory=list)
    impacts: dict[Metric, dict[str, float]] = field(default_factory=dict)
    fences: dict[Metric, Fences] = field(default_factory=dict)

    def outlier_contexts(self) -> list[str]:
        """Contexts containing at least one outlier metric, sorted."""
        return sorted({point.context_key for point in self.points})

    def memory_outlier_contexts(self) -> list[str]:
        """Contexts whose outliers include a memory-related counter."""
        return sorted(
            {
                point.context_key
                for point in self.points
                if point.metric in MEMORY_METRICS
            }
        )

    def points_for(self, context_key: str) -> list[OutlierPoint]:
        return [p for p in self.points if p.context_key == context_key]

    def severity_of(self, context_key: str) -> Severity | None:
        """The worst severity observed in a context, if any."""
        severities = {p.severity for p in self.points_for(context_key)}
        if Severity.EXTREME in severities:
            return Severity.EXTREME
        if Severity.MILD in severities:
            return Severity.MILD
        return None

    @property
    def is_empty(self) -> bool:
        return not self.points


def compute_weights(
    vectors: dict[str, MetricVector], metric: Metric
) -> dict[str, float]:
    """Per-context weight of ``metric``: value / least positive value.

    "Weights are assigned per metric by normalizing each metric value to the
    least value across all queries for the same metric" — a query whose
    contribution to, say, total page accesses is high gets a high weight.
    Zero-valued contexts get weight 0 (a change in a metric the query never
    exercises carries no impact).
    """
    values = {key: vector.get(metric) for key, vector in vectors.items()}
    positive = [v for v in values.values() if v > 0]
    if not positive:
        return {key: 0.0 for key in values}
    least = min(positive)
    return {key: (value / least if value > 0 else 0.0) for key, value in values.items()}


def compute_impact_values(
    current: dict[str, MetricVector],
    stable: dict[str, MetricVector],
    metric: Metric,
) -> dict[str, float]:
    """Metric impact value per context: (current / stable) * weight.

    Contexts with no stable signature are skipped here — the diagnosis layer
    treats brand-new classes as problem classes directly (paper §3.3.2).
    """
    weights = compute_weights(current, metric)
    impacts: dict[str, float] = {}
    for key, vector in current.items():
        baseline = stable.get(key)
        if baseline is None or metric not in vector.values:
            continue
        impacts[key] = vector.ratio_to(baseline)[metric] * weights[key]
    return impacts


def iqr_fences(values: list[float]) -> Fences:
    """First/third quartiles of ``values`` (linear-interpolation quartiles)."""
    if not values:
        raise ValueError("cannot compute fences of an empty sample")
    data = np.asarray(values, dtype=float)
    q1, q3 = np.percentile(data, [25.0, 75.0])
    return Fences(q1=float(q1), q3=float(q3))


def detect_outliers(
    current: dict[str, MetricVector],
    stable: dict[str, MetricVector],
    metrics: tuple[Metric, ...] | None = None,
    min_population: int = 4,
) -> OutlierReport:
    """Run the full detection pipeline over every requested metric.

    ``min_population`` guards degenerate fences: with fewer than four
    contexts the quartiles carry no information and everything (or nothing)
    would be fenced, so such metrics are skipped.
    """
    if metrics is None:
        metrics = tuple(Metric)
    report = OutlierReport()
    for metric in metrics:
        impacts = compute_impact_values(current, stable, metric)
        if len(impacts) < min_population:
            continue
        fences = iqr_fences(list(impacts.values()))
        report.impacts[metric] = impacts
        report.fences[metric] = fences
        for context_key in sorted(impacts):
            severity = fences.classify(impacts[context_key])
            if severity is not None:
                report.points.append(
                    OutlierPoint(
                        context_key=context_key,
                        metric=metric,
                        impact=impacts[context_key],
                        severity=severity,
                    )
                )
    return report


def top_k_heavyweight(
    current: dict[str, MetricVector],
    k: int,
    metrics: tuple[Metric, ...] = MEMORY_METRICS,
) -> list[str]:
    """The k heaviest contexts by combined memory-metric weight.

    The paper's fallback when no outlier contexts are found: "we use similar
    algorithms as above on the top-k heavyweight queries in terms of memory
    metrics".  Contexts are ranked by the sum of their per-metric weights.
    """
    if k <= 0:
        raise ValueError(f"k must be positive: {k}")
    scores: dict[str, float] = {key: 0.0 for key in current}
    for metric in metrics:
        for key, weight in compute_weights(current, metric).items():
            scores[key] += weight
    ranked = sorted(scores.items(), key=lambda item: (-item[1], item[0]))
    return [key for key, _ in ranked[:k]]
