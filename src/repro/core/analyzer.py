"""Per-server decision managers and per-engine log analyzers.

The schedulers communicate with one decision manager per physical server;
each decision manager drives one log analyzer per database engine on its
server (paper §3.1).  The log analyzer is where the monitoring pipeline
meets the detection algorithm:

* at every interval boundary it drains the engine's statistics log into
  per-context metric vectors,
* for applications whose SLA was met it refreshes stable-state signatures,
* on demand it runs outlier detection against those signatures and manages
  the per-context miss-ratio curves (initial computation on first
  scheduling, lazy recomputation during diagnosis).
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass

from ..engine.engine import DatabaseEngine
from ..obs import NULL_OBS, Observability
from .metrics import Metric, MetricVector, vector_from_stats
from .mrc import MissRatioCurve, MRCCache, MRCCacheKey, MRCParameters, MRCTracker
from .mrc_sampling import sampled_mrc
from .outliers import OutlierReport, detect_outliers, top_k_heavyweight
from .signature import SignatureStore

__all__ = ["LogAnalyzer", "DecisionManager"]

MAX_MRC_TRACE = 60_000
"""Stack-distance analysis is O(n log n); traces are clipped to this many
accesses, which is ample for working sets up to the pool size."""


def _app_of(context_key: str) -> str:
    """Query contexts are keyed ``app/class``; recover the app."""
    return context_key.split("/", 1)[0]


def _vector_sane(vector: MetricVector) -> bool:
    """Whether every metric value is finite and non-negative.

    The engine's own accumulators can only produce such values, so anything
    else means the statistics path was corrupted in flight; feeding it to
    the IQR detector would poison fences and impact scores for every class
    in the window.
    """
    return all(
        math.isfinite(value) and value >= 0.0
        for value in vector.values.values()
    )


class LogAnalyzer:
    """Monitors one database engine and detects outlier contexts on it."""

    def __init__(
        self,
        engine: DatabaseEngine,
        server_name: str,
        obs: Observability | None = None,
        mrc_sampling_rate: float = 1.0,
    ) -> None:
        if not 0.0 < mrc_sampling_rate <= 1.0:
            raise ValueError(
                f"MRC sampling rate must be in (0, 1]: {mrc_sampling_rate}"
            )
        self.engine = engine
        self.server_name = server_name
        self.obs = obs if obs is not None else NULL_OBS
        self.mrc_sampling_rate = mrc_sampling_rate
        self.signatures = SignatureStore(server=server_name)
        self.mrc = MRCTracker(
            server_memory_pages=engine.pool_pages, registry=self.obs.registry
        )
        # Memo of the last stack-distance analysis per class, keyed by the
        # access window's total_seen watermark and the pool size; serves the
        # previous curve for free when nothing changed in between.
        self.mrc_cache = MRCCache(registry=self.obs.registry)
        self._last_vectors: dict[str, MetricVector] = {}
        self._mrc_window_len: dict[str, int] = {}
        self._intervals_closed = 0
        self._first_seen: dict[str, int] = {}
        # Lock-contention evidence from the interval just closed.
        self.last_waits_for = None
        self.last_lock_stats: dict = {}
        # total_seen watermark of each context's window at recent interval
        # boundaries; the delta to the oldest mark is the "recent tail" the
        # diagnosis-time MRC recomputation uses.
        self._seen_marks: dict[str, deque[int]] = {}
        # Degraded-mode state: armed faults (consumed by the next drain) and
        # the quarantine verdict of the interval just closed.
        self._gap_next: str | None = None
        self._corrupt_next: tuple[Metric, ...] | None = None
        self.degraded_last_interval: str | None = None
        self.quarantined_intervals = 0

    # ------------------------------------------------------------------ #
    # Interval pipeline                                                  #
    # ------------------------------------------------------------------ #

    def close_interval(
        self,
        interval_length: float,
        sla_met_by_app: dict[str, bool],
        timestamp: float,
        initial_mrc_min_accesses: int = 2000,
    ) -> dict[str, MetricVector]:
        """Drain the engine log and refresh signatures for stable apps.

        Returns the interval's metric vectors (also retained internally for
        subsequent ``detect`` calls).

        For contexts of *stable* applications that lack a miss-ratio curve,
        the initial MRC is computed here — the paper determines a class's
        MRC when it is first scheduled.  Contexts of violating applications
        are deliberately left without an MRC so diagnosis recognises them as
        newly scheduled problem classes.
        """
        with self.obs.tracer.span(
            "analyzer.drain",
            attrs={"engine": self.engine.name, "server": self.server_name},
        ) as span:
            vectors = self._drain(
                interval_length, sla_met_by_app, timestamp,
                initial_mrc_min_accesses, span,
            )
        return vectors

    def _drain(
        self,
        interval_length: float,
        sla_met_by_app: dict[str, bool],
        timestamp: float,
        initial_mrc_min_accesses: int,
        span,
    ) -> dict[str, MetricVector]:
        self.engine.flush_logs()
        self.last_waits_for = self.engine.locks.reset_waits_for()
        self.last_lock_stats = self.engine.locks.interval_snapshot()
        snapshot = self.engine.log.interval_snapshot()
        span.add_cost(sum(stats.executions for stats in snapshot.values()))
        vectors = {
            key: vector_from_stats(stats, interval_length)
            for key, stats in snapshot.items()
        }
        vectors, degraded = self._screen_vectors(vectors)
        self.degraded_last_interval = degraded
        if degraded is not None:
            # Quarantine: a partial or corrupt window refreshes nothing.
            # Signatures and MRCs keep their last stable state, detection
            # sees no vectors it could be misled by, and the controller
            # (via ``degraded_last_interval``) refuses to act this round.
            self._quarantine(degraded, span)
            self._intervals_closed += 1
            self._last_vectors = {}
            self._publish_pool_metrics()
            return {}
        stable_updates = {
            key: vector
            for key, vector in vectors.items()
            if sla_met_by_app.get(_app_of(key), False)
        }
        if stable_updates:
            self.signatures.record_stable(stable_updates, timestamp)
        for key in stable_updates:
            window = self.engine.log.window_for(key)
            if not self.mrc.has(key):
                if len(window) >= initial_mrc_min_accesses:
                    self.recompute_mrc(key)
            else:
                # Refine the initial estimate while the window is still
                # filling: a curve computed over a short, cold-miss-dominated
                # window badly underestimates memory needs.  Each refresh
                # requires the window to have doubled, so a long-lived class
                # is recomputed only O(log window-capacity) times.
                seen = self._mrc_window_len.get(key, 0)
                if 0 < seen < window.capacity and len(window) >= 2 * seen:
                    self.recompute_mrc(key)
        for key in vectors:
            marks = self._seen_marks.setdefault(key, deque(maxlen=3))
            marks.append(self.engine.log.window_for(key).total_seen)
            self._first_seen.setdefault(key, self._intervals_closed)
        self._intervals_closed += 1
        self._last_vectors = vectors
        self._publish_pool_metrics()
        return vectors

    def _screen_vectors(
        self, vectors: dict[str, MetricVector]
    ) -> tuple[dict[str, MetricVector], str | None]:
        """Apply armed faults, then sanity-screen what the log produced.

        Returns the surviving vectors and the degradation reason (``None``
        for a healthy interval).  The screen itself is always on — it is
        the defensive layer; the injection hooks merely exercise it.
        """
        reason: str | None = None
        if self._gap_next is not None:
            reason = self._gap_next
            self._gap_next = None
            return {}, reason
        if self._corrupt_next is not None:
            fields = self._corrupt_next
            self._corrupt_next = None
            vectors = {
                key: MetricVector(
                    context_key=vector.context_key,
                    values={
                        metric: (float("nan") if metric in fields else value)
                        for metric, value in vector.values.items()
                    },
                )
                for key, vector in vectors.items()
            }
        sane = {
            key: vector for key, vector in vectors.items() if _vector_sane(vector)
        }
        dropped = len(vectors) - len(sane)
        if dropped:
            reason = "corrupt-metrics"
            registry = self.obs.registry
            if registry.enabled:
                registry.counter(
                    "analyzer.corrupt_vectors",
                    engine=self.engine.name,
                    server=self.server_name,
                ).inc(dropped)
        return sane, reason

    def _quarantine(self, reason: str, span) -> None:
        self.quarantined_intervals += 1
        span.set_attr("quarantined", reason)
        registry = self.obs.registry
        if registry.enabled:
            registry.counter(
                "analyzer.windows_quarantined",
                engine=self.engine.name,
                server=self.server_name,
                reason=reason,
            ).inc()

    def amnesia(self) -> None:
        """Forget everything learned: the control-plane crash model.

        A monitoring-agent restart keeps its configuration (engine
        attachment, server identity, sampling rate) but loses process
        memory: signatures, miss-ratio curves and their cache, window
        watermarks, quarantine history and any armed fault hooks.  The
        data plane — the engine's statistics log and buffer pool — is
        untouched; it belongs to the database process, not the monitor.
        Counters are reset by direct assignment so amnesia itself emits
        no telemetry (recovery's zero-byte default contract).
        """
        self.signatures = SignatureStore(server=self.server_name)
        self.mrc._curves.clear()
        self.mrc._parameters.clear()
        self.mrc.recomputations = 0
        self.mrc_cache._entries.clear()
        self.mrc_cache.hits = 0
        self.mrc_cache.misses = 0
        self._last_vectors = {}
        self._mrc_window_len = {}
        self._intervals_closed = 0
        self._first_seen = {}
        self.last_waits_for = None
        self.last_lock_stats = {}
        self._seen_marks = {}
        self._gap_next = None
        self._corrupt_next = None
        self.degraded_last_interval = None
        self.quarantined_intervals = 0

    # ------------------------------------------------------------------ #
    # Fault hooks (consumed by the next interval drain)                  #
    # ------------------------------------------------------------------ #

    def inject_stats_gap(self, reason: str = "stats-gap") -> None:
        """Arm a one-interval statistics-log gap: the next drain loses the
        engine log's snapshot, as a crashed monitoring agent would."""
        self._gap_next = reason

    def inject_metric_corruption(
        self, fields: tuple[Metric, ...] | None = None
    ) -> None:
        """Arm one interval of corrupt metric values (NaN latency by
        default); the sanity screen must quarantine them rather than feed
        them to the IQR detector."""
        self._corrupt_next = tuple(fields) if fields else (Metric.LATENCY,)

    def _publish_pool_metrics(self) -> None:
        """Export the engine pool's cumulative counters as gauges.

        Published at interval close rather than on every page access, so the
        buffer pool's hot path carries no instrumentation calls at all.
        """
        registry = self.obs.registry
        if not registry.enabled:
            return
        pool = self.engine.pool
        labels = {"engine": self.engine.name, "server": self.server_name}
        registry.gauge("bufferpool.hits", **labels).set(pool.stats.hits)
        registry.gauge("bufferpool.misses", **labels).set(pool.stats.misses)
        registry.gauge("bufferpool.readaheads", **labels).set(
            pool.stats.readaheads
        )
        registry.gauge("bufferpool.evictions", **labels).set(
            pool.total_evictions
        )
        registry.gauge("bufferpool.resident_pages", **labels).set(len(pool))

    def current_vectors(self, app: str | None = None) -> dict[str, MetricVector]:
        """The most recent interval's vectors, optionally for one app."""
        if app is None:
            return dict(self._last_vectors)
        return {
            key: vector
            for key, vector in self._last_vectors.items()
            if _app_of(key) == app
        }

    def effective_vectors(self, app: str | None = None) -> dict[str, MetricVector]:
        """Current vectors, falling back to the last stable-state signature
        when the last window was quarantined.

        Degraded-mode evidence for read-only consumers (dashboards, load
        estimates): stale-but-sane beats fresh-but-corrupt.  The controller
        itself still refuses to *retune* on a quarantined interval — the
        fallback describes the recent past, not the violating present.
        """
        if self.degraded_last_interval is None:
            return self.current_vectors(app)
        stable = self.signatures.stable_vectors()
        if app is None:
            return dict(stable)
        return {
            key: vector for key, vector in stable.items() if _app_of(key) == app
        }

    # ------------------------------------------------------------------ #
    # Detection                                                          #
    # ------------------------------------------------------------------ #

    def detect(self, app: str) -> OutlierReport:
        """Outlier contexts of ``app`` on this engine, per the paper's IQR
        scheme over metric impact values."""
        current = self.current_vectors(app)
        stable = {
            key: vector
            for key, vector in self.signatures.stable_vectors().items()
            if key in current
        }
        return detect_outliers(current, stable)

    def heavyweight_contexts(self, app: str, k: int = 3) -> list[str]:
        """Fallback candidates when no outliers fire (paper §3.3.2)."""
        current = self.current_vectors(app)
        if not current:
            return []
        return top_k_heavyweight(current, k=min(k, len(current)))

    def recently_scheduled(self, context_key: str, horizon: int = 5) -> bool:
        """Whether the context first appeared on this engine within the last
        ``horizon`` closed intervals — the reproduction's notion of a "newly
        scheduled" class."""
        first = self._first_seen.get(context_key)
        if first is None:
            return True
        return self._intervals_closed - first <= horizon

    def new_contexts(
        self, app: str | None = None, horizon: int = 5
    ) -> list[str]:
        """Contexts active this interval that were only recently scheduled —
        problem classes directly (paper §3.3.2).

        With ``app=None`` all applications on the engine are considered:
        memory interference is cross-application (a newly started workload
        in a shared buffer pool victimises the incumbent), so a violation of
        one application legitimately blames another's new classes.
        """
        return sorted(
            key
            for key in self.current_vectors(app)
            if self.recently_scheduled(key, horizon)
        )

    # ------------------------------------------------------------------ #
    # MRC management                                                     #
    # ------------------------------------------------------------------ #

    def ensure_mrc(self, context_key: str) -> MRCParameters | None:
        """Compute the context's MRC if it does not exist yet.

        Returns ``None`` when the engine has no recent-access window for the
        context (it has not executed here yet).
        """
        if self.mrc.has(context_key):
            return self.mrc.parameters_of(context_key)
        return self.recompute_mrc(context_key)

    def _build_curve(self, trace, span) -> tuple[MissRatioCurve, MRCParameters]:
        """One stack-distance analysis, exact or SHARDS-sampled.

        The span records the exact-vs-sampled work units: ``exact_units``
        is what a full analysis would have processed, ``cost`` (and
        ``sampled_units``) is what this one actually did.
        """
        rate = self.mrc_sampling_rate
        span.set_attr("exact_units", len(trace))
        if rate < 1.0:
            curve, stats = sampled_mrc(trace, rate=rate)
            span.set_attr("mode", "sampled")
            span.set_attr("sampled_units", stats.sampled_length)
            span.add_cost(stats.sampled_length)
        else:
            curve = MissRatioCurve.from_trace(trace)
            span.set_attr("mode", "exact")
            span.add_cost(len(trace))
        params = curve.parameters(
            self.mrc.server_memory_pages, self.mrc.acceptable_threshold
        )
        return curve, params

    def recompute_mrc(
        self, context_key: str, recent_only: bool = False, min_tail: int = 2000
    ) -> MRCParameters | None:
        """Recompute the MRC from the recent page-access window.

        With ``recent_only`` the trace is limited to accesses issued over
        roughly the last two measurement intervals — the diagnosis path uses
        this so a curve recomputed *after* a behaviour change (index drop, a
        new workload) reflects the changed plan rather than a blend of old
        and new history.

        The analysis itself goes through the per-class :class:`MRCCache`:
        if the window has not advanced (and the pool was not resized) since
        the last recomputation of the same slice, the previous curve is
        served without any stack-distance work — and without incrementing
        the ``mrc.recomputations`` counter.
        """
        if not self.engine.log.has_window(context_key):
            return None
        window = self.engine.log.window_for(context_key)
        trace = window.snapshot()
        variant = "full"
        if recent_only:
            marks = self._seen_marks.get(context_key)
            # marks[-1] is the watermark at the close of the interval
            # being diagnosed, so marks[-2] bounds exactly that
            # interval's accesses — the post-change behaviour.
            base = marks[-2] if marks and len(marks) >= 2 else 0
            variant = f"recent:{min_tail}:{base}"
            if marks:
                tail = window.total_seen - base
                tail = max(min(tail, len(trace)), min(min_tail, len(trace)))
                trace = trace[-tail:]
        if len(trace) > MAX_MRC_TRACE:
            trace = trace[-MAX_MRC_TRACE:]
        cache_key = MRCCacheKey(
            window_version=window.total_seen,
            pool_pages=self.engine.pool_pages,
            variant=variant,
        )
        cached = self.mrc_cache.get(context_key, cache_key)
        if cached is not None:
            curve, params = cached
            self.mrc.restore(context_key, curve, params)
        else:
            with self.obs.tracer.span(
                "mrc.recompute",
                attrs={"context": context_key, "recent_only": recent_only},
            ) as span:
                curve, params = self._build_curve(trace, span)
                self.mrc.store(context_key, curve, params)
            self.mrc_cache.put(context_key, cache_key, (curve, params))
        self.signatures.set_mrc(context_key, params)
        self._mrc_window_len[context_key] = len(window)
        return params

    def stored_mrc(self, context_key: str) -> MRCParameters | None:
        return self.signatures.mrc_of(context_key)

    def assess_recent_behaviour(
        self,
        context_key: str,
        change_threshold: float,
        min_tail: int = 2000,
        new_class_horizon: int = 5,
    ) -> tuple[str, MRCParameters | None]:
        """Did this context's paging behaviour recently change?

        Computes MRC parameters over the most recent interval's accesses and
        over an *equal-length* slice of the history immediately preceding it,
        then applies the significance test.  Comparing equal-length slices
        cancels trace-length artefacts (short traces are cold-miss dominated,
        which inflates apparent parameter changes).

        Returns ``(status, recent_params)`` where status is one of

        * ``"no-window"`` — the context never executed here,
        * ``"insufficient"`` — too few recent accesses to judge the class,
        * ``"new"`` — no MRC was ever recorded for the class here: a newly
          scheduled class (a problem class by definition),
        * ``"changed"`` / ``"unchanged"`` — the significance verdict.

        Whenever a recent curve is computed it is stored as the context's
        current MRC record (the paper's recomputation step).  Both curves
        go through the :class:`MRCCache`: re-assessing a class whose window
        has not advanced serves the previous pair without any new
        stack-distance work.
        """
        if not self.engine.log.has_window(context_key):
            return ("no-window", None)
        is_new = self.recently_scheduled(context_key, new_class_horizon)
        window = self.engine.log.window_for(context_key)
        trace = window.snapshot()
        marks = self._seen_marks.get(context_key)
        base = marks[-2] if marks and len(marks) >= 2 else 0
        tail = window.total_seen - base
        tail = max(min(tail, len(trace)), min(min_tail, len(trace)))
        recent = trace[-tail:]
        if len(recent) < min_tail:
            return ("insufficient", None)
        # The comparison slice comes from the *oldest* end of the window:
        # a change is typically noticed one interval after it happens (the
        # violation has to build up first), so the slice immediately before
        # the recent tail may already exhibit the new behaviour.  The oldest
        # resident history is the best stable-era evidence available.
        before = trace[: min(tail, len(trace) - tail)]
        # is_new participates in the key: an established class needs the
        # "before" curve the new-class assessment never computed.
        cache_key = MRCCacheKey(
            window_version=window.total_seen,
            pool_pages=self.engine.pool_pages,
            variant=f"assess:{min_tail}:{base}:{int(is_new)}",
        )
        cached = self.mrc_cache.get(context_key, cache_key)
        if cached is not None:
            recent_curve, recent_params, before_params = cached
            self.mrc.restore(context_key, recent_curve, recent_params)
        else:
            with self.obs.tracer.span(
                "mrc.recompute", attrs={"context": context_key, "assess": True}
            ) as span:
                recent_curve, recent_params = self._build_curve(recent, span)
                self.mrc.store(context_key, recent_curve, recent_params)
            before_params = None
            if not is_new and len(before) >= min(min_tail, tail) // 2:
                with self.obs.tracer.span(
                    "mrc.recompute",
                    attrs={"context": context_key, "assess": True,
                           "slice": "before"},
                ) as span:
                    _, before_params = self._build_curve(before, span)
            self.mrc_cache.put(
                context_key, cache_key,
                (recent_curve, recent_params, before_params),
            )
        self.signatures.set_mrc(context_key, recent_params)
        self._mrc_window_len[context_key] = len(window)
        if is_new:
            return ("new", recent_params)
        if before_params is None:
            # Not enough prior history for a like-for-like comparison; an
            # established class cannot be called changed on this evidence.
            return ("unchanged", recent_params)
        changed = recent_params.significantly_differs_from(
            before_params, change_threshold
        )
        return ("changed" if changed else "unchanged", recent_params)


@dataclass
class DecisionManager:
    """One per physical server: fans interval processing out to the log
    analyzers of every engine hosted there."""

    server_name: str
    obs: Observability = NULL_OBS
    mrc_sampling_rate: float = 1.0

    def __post_init__(self) -> None:
        self._analyzers: dict[str, LogAnalyzer] = {}

    def attach_engine(self, engine: DatabaseEngine) -> LogAnalyzer:
        if engine.name in self._analyzers:
            return self._analyzers[engine.name]
        analyzer = LogAnalyzer(
            engine,
            self.server_name,
            obs=self.obs,
            mrc_sampling_rate=self.mrc_sampling_rate,
        )
        self._analyzers[engine.name] = analyzer
        return analyzer

    def analyzer_for(self, engine_name: str) -> LogAnalyzer:
        try:
            return self._analyzers[engine_name]
        except KeyError:
            raise KeyError(
                f"server {self.server_name!r} has no engine {engine_name!r}"
            ) from None

    def analyzers(self) -> list[LogAnalyzer]:
        return [self._analyzers[name] for name in sorted(self._analyzers)]

    def close_interval(
        self,
        interval_length: float,
        sla_met_by_app: dict[str, bool],
        timestamp: float,
    ) -> None:
        for analyzer in self.analyzers():
            analyzer.close_interval(interval_length, sla_met_by_app, timestamp)
