"""The paper's contribution: statistics, outlier detection, MRC, retuning."""

from .advisor import ClassPrediction, PlanAssessment, assess_plan, predict_miss_ratios
from .analyzer import DecisionManager, LogAnalyzer
from .controller import AppIntervalReport, ClusterController, ControllerConfig
from .diagnosis import (
    Action,
    ActionKind,
    Diagnosis,
    DiagnosisConfig,
    ReplicaView,
    diagnose,
)
from .metrics import MEMORY_METRICS, Metric, MetricVector, vector_from_stats
from .mrc_sampling import SamplingStats, sample_trace, sampled_mrc
from .mrc import (
    DEFAULT_ACCEPTABLE_THRESHOLD,
    FenwickTree,
    MissRatioCurve,
    MRCParameters,
    MRCTracker,
    stack_distances,
    stack_distances_fenwick,
)
from .outliers import (
    Fences,
    OutlierPoint,
    OutlierReport,
    Severity,
    compute_impact_values,
    compute_weights,
    detect_outliers,
    iqr_fences,
    top_k_heavyweight,
)
from .quota import QuotaPlan, find_quotas, placement_fits_totals
from .signature import SignatureStore, StableStateSignature

__all__ = [
    "Action",
    "ClassPrediction",
    "PlanAssessment",
    "ActionKind",
    "AppIntervalReport",
    "ClusterController",
    "ControllerConfig",
    "DEFAULT_ACCEPTABLE_THRESHOLD",
    "DecisionManager",
    "Diagnosis",
    "DiagnosisConfig",
    "Fences",
    "LogAnalyzer",
    "FenwickTree",
    "MEMORY_METRICS",
    "Metric",
    "MetricVector",
    "MissRatioCurve",
    "MRCParameters",
    "MRCTracker",
    "OutlierPoint",
    "OutlierReport",
    "QuotaPlan",
    "ReplicaView",
    "Severity",
    "SamplingStats",
    "SignatureStore",
    "StableStateSignature",
    "compute_impact_values",
    "compute_weights",
    "detect_outliers",
    "diagnose",
    "find_quotas",
    "iqr_fences",
    "placement_fits_totals",
    "assess_plan",
    "predict_miss_ratios",
    "sample_trace",
    "sampled_mrc",
    "stack_distances",
    "stack_distances_fenwick",
    "top_k_heavyweight",
    "vector_from_stats",
]
