"""Memory-quota search for problem query classes (paper §3.3.2).

For each server where MRC changes occurred, the heuristic decides between
the two fine-grained memory actions:

* **keep in place with a quota** — feasible when quotas can be found such
  that every problem class *and* the rest of the co-located queries are
  predicted (by their MRCs) to run at or below their acceptable miss ratios;
* **reschedule to another replica** — taken when no such quotas exist.

The search is iterative: every context starts at its *total* memory need,
and problem contexts are shrunk toward their *acceptable* need, largest
excess first, until the pool fits or all slack is exhausted.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .mrc import MRCParameters

__all__ = ["QuotaPlan", "placement_fits_totals", "find_quotas"]


@dataclass
class QuotaPlan:
    """The outcome of a quota search on one server."""

    feasible: bool
    quotas: dict[str, int] = field(default_factory=dict)
    shared_pages: int = 0
    shortfall: int = 0

    @property
    def reserved_pages(self) -> int:
        return sum(self.quotas.values())


def placement_fits_totals(
    contexts: dict[str, MRCParameters], pool_pages: int
) -> bool:
    """Whether the pool can meet the *total* memory need of every context.

    When it can, no quota enforcement is necessary — the shared pool already
    has room for every working set (paper: "we determine if the current
    placement of query contexts can meet the total memory need of all query
    contexts").
    """
    if pool_pages <= 0:
        raise ValueError(f"pool size must be positive: {pool_pages}")
    # Strictly less than: a context whose total-memory estimate is capped at
    # the pool size is starving, not fitting.
    return sum(params.total_memory for params in contexts.values()) < pool_pages


def find_quotas(
    problem_contexts: dict[str, MRCParameters],
    other_contexts: dict[str, MRCParameters],
    pool_pages: int,
    min_quota: int = 1,
) -> QuotaPlan:
    """Search for per-problem-class quotas that keep everyone acceptable.

    Problem classes receive dedicated partitions; the remaining classes share
    the rest of the pool, which must cover the *sum* of their acceptable
    memory needs.  Returns an infeasible plan (with the page shortfall) when
    even the minimum allocation does not fit — the caller then reschedules
    the top problem class to a different replica instead.

    ``min_quota`` bounds every problem partition from below: scan-like
    classes have near-zero acceptable memory by MRC (caching never helps a
    one-pass scan) but still need a few hundred pages so their read-ahead
    chunks fit in their own partition.
    """
    if pool_pages <= 0:
        raise ValueError(f"pool size must be positive: {pool_pages}")
    if not problem_contexts:
        raise ValueError("quota search needs at least one problem context")
    if min_quota < 1:
        raise ValueError(f"min quota must be at least one page: {min_quota}")

    others_floor = sum(p.acceptable_memory for p in other_contexts.values())
    floors = {
        key: max(params.acceptable_memory, min_quota)
        for key, params in problem_contexts.items()
    }
    # Start each problem class at its full (total) need, then shrink toward
    # the acceptable need, taking pages from the largest remaining excess.
    allocation = {
        key: max(params.total_memory, floors[key])
        for key, params in problem_contexts.items()
    }

    def overcommit() -> int:
        return sum(allocation.values()) + others_floor - pool_pages

    excess = overcommit()
    while excess > 0:
        shrinkable = sorted(
            (key for key in allocation if allocation[key] > floors[key]),
            key=lambda key: (floors[key] - allocation[key], key),
        )
        if not shrinkable:
            break
        key = shrinkable[0]
        slack = allocation[key] - floors[key]
        take = min(slack, excess)
        allocation[key] -= take
        excess -= take

    if excess > 0:
        return QuotaPlan(feasible=False, shortfall=excess)

    shared = pool_pages - sum(allocation.values())
    if shared <= 0:
        # Quotas may not consume the entire pool: the shared partition needs
        # at least one page.  Reclaim it from quotas with slack above their
        # floor (largest slack first) — never from the floors themselves,
        # which are the plan's acceptable-miss-ratio guarantee.
        deficit = 1 - shared
        for key in sorted(
            allocation,
            key=lambda key: (floors[key] - allocation[key], key),
        ):
            if deficit <= 0:
                break
            slack = allocation[key] - floors[key]
            take = min(slack, deficit)
            if take > 0:
                allocation[key] -= take
                deficit -= take
        if deficit > 0:
            return QuotaPlan(feasible=False, shortfall=deficit)
        shared = 1
    return QuotaPlan(feasible=True, quotas=allocation, shared_pages=shared)
