"""Miss-ratio curve (MRC) tracking via Mattson's stack algorithm.

The MRC of a query class gives its page miss ratio at every possible memory
size.  Because LRU obeys the *inclusion property* (a memory of ``k + 1``
pages always contains the contents of a memory of ``k`` pages), one pass
over a page trace yields the miss ratio at **all** sizes simultaneously:
for each reference, the page's LRU *stack distance* ``d`` means a pool of at
least ``d`` pages would have hit, so ``Hit[d]`` is incremented; first-ever
references increment ``Hit[inf]``.  The paper's Equation (1):

    MR(m) = 1 - sum_{i<=m} Hit[i] / (sum_i Hit[i] + Hit[inf])

Stack distances are computed in ``O(N log N)`` — but fully vectorised:
the distance of reference ``i`` with previous occurrence ``prev[i]`` is
``(i - prev[i]) - #{k < i : prev[k] > prev[i]}`` (each later re-reference
of another page collapses one duplicate in the interval), and the
count-earlier-greater term is evaluated level-by-level with sorted blocks
and ``numpy.searchsorted`` (a CDQ divide-and-conquer flattened into array
passes).  The classical per-element Fenwick-tree formulation is kept as
:func:`stack_distances_fenwick` — the reference the property suite checks
the vectorised path against.

Two parameters summarise a curve (paper §3.3):

* **total memory needed** — the smaller of the server's memory and the size
  at which the miss ratio bottoms out (only cold misses remain); the miss
  ratio there is the **ideal miss ratio**;
* **acceptable memory needed** — the smallest size whose miss ratio is
  within a fixed threshold of the ideal; its miss ratio is the **acceptable
  miss ratio**.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

import numpy as np

from ..obs.registry import MetricRegistry, NULL_REGISTRY

__all__ = [
    "FenwickTree",
    "stack_distances",
    "stack_distances_fenwick",
    "MissRatioCurve",
    "MRCParameters",
    "MRCTracker",
    "MRCCacheKey",
    "MRCCache",
]

DEFAULT_ACCEPTABLE_THRESHOLD = 0.05
"""Acceptable miss ratio = ideal miss ratio + this threshold (paper §3.3;
the paper leaves the constant unspecified — 0.05 places the acceptable
memory at the knee of both convex and nearly flat curves)."""


class FenwickTree:
    """A binary indexed tree over ``size`` slots supporting point update
    and prefix sum, used to count still-live last-access markers."""

    def __init__(self, size: int) -> None:
        if size < 0:
            raise ValueError(f"size must be non-negative: {size}")
        self.size = size
        self._tree = np.zeros(size + 1, dtype=np.int64)

    def add(self, index: int, delta: int) -> None:
        """Add ``delta`` at 0-based ``index``."""
        if not 0 <= index < self.size:
            raise IndexError(f"index {index} outside [0, {self.size})")
        i = index + 1
        while i <= self.size:
            self._tree[i] += delta
            i += i & (-i)

    def prefix_sum(self, count: int) -> int:
        """Sum of the first ``count`` slots (0-based exclusive bound)."""
        if count < 0:
            raise IndexError(f"count must be non-negative: {count}")
        count = min(count, self.size)
        total = 0
        i = count
        while i > 0:
            total += int(self._tree[i])
            i -= i & (-i)
        return total

    def range_sum(self, start: int, stop: int) -> int:
        """Sum of slots in ``[start, stop)``."""
        if start > stop:
            raise IndexError(f"invalid range [{start}, {stop})")
        return self.prefix_sum(stop) - self.prefix_sum(start)


def stack_distances_fenwick(trace: Sequence[int] | np.ndarray) -> np.ndarray:
    """Per-element Fenwick-tree stack distances (reference implementation).

    Same contract as :func:`stack_distances`; kept because its correctness
    is easy to audit and the property suite uses it as the oracle for the
    vectorised path.
    """
    pages = np.asarray(trace, dtype=np.int64)
    n = len(pages)
    distances = np.zeros(n, dtype=np.int64)
    tree = FenwickTree(n)
    last_seen: dict[int, int] = {}
    for i in range(n):
        page = int(pages[i])
        prev = last_seen.get(page)
        if prev is None:
            distances[i] = 0
        else:
            # Distinct pages touched strictly after prev, plus the page itself.
            distances[i] = tree.range_sum(prev + 1, i) + 1
            tree.add(prev, -1)
        tree.add(i, 1)
        last_seen[page] = i
    return distances


def _count_earlier_greater(values: np.ndarray) -> np.ndarray:
    """``out[i] = #{k < i : values[k] > values[i]}`` without a Python loop.

    A CDQ divide-and-conquer over positions, run bottom-up: at each level
    the array is viewed as blocks of ``size``; every odd block queries its
    left sibling, which is already available fully sorted.  All queries of
    a level collapse into one ``searchsorted`` by shifting each block's
    values into a disjoint range (``block index * span``), so the
    concatenation of the per-block sorted runs is globally sorted.
    """
    n = len(values)
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    n_pad = 1 << max(1, (n - 1).bit_length()) if n > 1 else 1
    lo = int(values.min()) - 1
    arr = np.full(n_pad, lo, dtype=np.int64)  # padding never exceeds a query
    arr[:n] = values
    counts = np.zeros(n_pad, dtype=np.int64)
    span = int(arr.max()) - lo + 2
    idx = np.arange(n_pad, dtype=np.int64)
    size = 1
    while size < n_pad:
        nblocks = n_pad // size
        block_of = idx // size
        shifted = arr + block_of * span
        flat = np.sort(shifted.reshape(nblocks, size), axis=1).ravel()
        query = (block_of & 1) == 1
        qi = idx[query]
        left = block_of[qi] - 1
        qval = arr[qi] + left * span
        pos = np.searchsorted(flat, qval, side="right")
        # Elements of the left sibling strictly greater than the query value:
        # the block ends at (left + 1) * size in the flattened sorted runs.
        counts[qi] += (left + 1) * size - pos
        size *= 2
    return counts[:n]


def stack_distances(trace: Sequence[int] | np.ndarray) -> np.ndarray:
    """LRU stack distance of every reference in ``trace``.

    A distance of ``d`` means the page sat at depth ``d`` (1-based) in the
    LRU stack, i.e. a pool of ``>= d`` pages would have hit.  First-ever
    references get distance 0 (the cold-miss marker).

    Vectorised: with ``prev[i]`` the previous occurrence of page
    ``trace[i]`` (or -1), the distance is ``i - prev[i]`` minus the number
    of references in between whose page re-appears before ``i`` — i.e.
    ``#{k < i : prev[k] > prev[i]}`` — because each such re-reference
    collapses one duplicate in the interval.  Produces bit-identical
    output to :func:`stack_distances_fenwick`.
    """
    pages = np.asarray(trace, dtype=np.int64)
    n = len(pages)
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    order = np.argsort(pages, kind="stable")
    sorted_pages = pages[order]
    prev_sorted = np.empty(n, dtype=np.int64)
    prev_sorted[0] = -1
    same_page = sorted_pages[1:] == sorted_pages[:-1]
    prev_sorted[1:] = np.where(same_page, order[:-1], -1)
    prev = np.empty(n, dtype=np.int64)
    prev[order] = prev_sorted
    counts = _count_earlier_greater(prev)
    idx = np.arange(n, dtype=np.int64)
    return np.where(prev < 0, 0, idx - prev - counts)


class MissRatioCurve:
    """The full MR(m) function of one page trace."""

    def __init__(self, hit_counts: np.ndarray, cold_misses: int) -> None:
        """``hit_counts[d]`` (1-based ``d``; index 0 unused) is Hit[d]."""
        self._hits = np.asarray(hit_counts, dtype=np.int64)
        self.cold_misses = int(cold_misses)
        self.total_accesses = int(self._hits.sum()) + self.cold_misses
        self._cumulative = np.cumsum(self._hits)

    @classmethod
    def from_trace(cls, trace: Sequence[int] | np.ndarray) -> "MissRatioCurve":
        """Run Mattson's algorithm over ``trace`` and build the curve."""
        distances = stack_distances(trace)
        cold = int(np.count_nonzero(distances == 0))
        warm = distances[distances > 0]
        max_depth = int(warm.max()) if len(warm) else 0
        hits = np.bincount(warm, minlength=max_depth + 1)
        return cls(hits, cold)

    @property
    def max_depth(self) -> int:
        """Deepest stack distance observed (the trace's reuse footprint)."""
        return len(self._hits) - 1

    def hits_at(self, memory_pages: int) -> int:
        """Hits a pool of ``memory_pages`` would have served on this trace."""
        if memory_pages < 0:
            raise ValueError(f"memory size must be non-negative: {memory_pages}")
        if memory_pages == 0 or self.total_accesses == 0:
            return 0
        index = min(memory_pages, self.max_depth)
        return int(self._cumulative[index]) if index >= 1 else 0

    def miss_ratio(self, memory_pages: int) -> float:
        """MR(m): predicted miss ratio with ``memory_pages`` of memory."""
        if self.total_accesses == 0:
            return 0.0
        return 1.0 - self.hits_at(memory_pages) / self.total_accesses

    def curve(self, sizes: Iterable[int]) -> list[tuple[int, float]]:
        """(size, miss ratio) samples for plotting or reporting."""
        return [(size, self.miss_ratio(size)) for size in sizes]

    @property
    def minimum_miss_ratio(self) -> float:
        """Miss ratio once every reuse is captured (cold misses only)."""
        return self.miss_ratio(self.max_depth)

    def parameters(
        self,
        server_memory_pages: int,
        acceptable_threshold: float = DEFAULT_ACCEPTABLE_THRESHOLD,
        flatness_epsilon: float = 1e-6,
    ) -> "MRCParameters":
        """Derive the paper's two MRC parameters for this curve."""
        if server_memory_pages <= 0:
            raise ValueError(
                f"server memory must be positive: {server_memory_pages}"
            )
        if acceptable_threshold < 0:
            raise ValueError(
                f"acceptable threshold must be non-negative: {acceptable_threshold}"
            )
        floor = self.minimum_miss_ratio
        saturation = self._smallest_size_with_ratio(floor + flatness_epsilon)
        total_memory = min(server_memory_pages, saturation)
        ideal = self.miss_ratio(total_memory)
        acceptable_memory = self._smallest_size_with_ratio(
            ideal + acceptable_threshold
        )
        acceptable_memory = min(acceptable_memory, total_memory)
        return MRCParameters(
            total_memory=total_memory,
            ideal_miss_ratio=ideal,
            acceptable_memory=acceptable_memory,
            acceptable_miss_ratio=self.miss_ratio(acceptable_memory),
            threshold=acceptable_threshold,
        )

    def _smallest_size_with_ratio(self, target: float) -> int:
        """Smallest m with MR(m) <= target (binary search on hits).

        The result is clamped to ``[1, max_depth]``: a pool needs at least
        one page, and sizes beyond the deepest observed reuse are all
        equivalent.  When the trace has no reuse at all (``max_depth == 0``
        — every reference a cold miss) every size is equivalent too, so 1 is
        returned for any target, matching :meth:`parameters`' semantics of
        "the size at which only cold misses remain" (tests pin this).
        """
        if self.total_accesses == 0:
            return 1
        needed_hits = (1.0 - target) * self.total_accesses
        # cumulative hits are non-decreasing in m; find first index meeting it
        index = int(np.searchsorted(self._cumulative, needed_hits - 1e-9, side="left"))
        return max(1, min(index, self.max_depth) if self.max_depth else 1)


@dataclass(frozen=True)
class MRCParameters:
    """The two sizes and two ratios the diagnosis algorithm consumes."""

    total_memory: int
    ideal_miss_ratio: float
    acceptable_memory: int
    acceptable_miss_ratio: float
    threshold: float = DEFAULT_ACCEPTABLE_THRESHOLD

    def significantly_differs_from(
        self,
        other: "MRCParameters",
        relative: float = 0.25,
        min_absolute_pages: int = 256,
    ) -> bool:
        """Whether memory needs changed enough to suspect this class.

        The paper recomputes a problem class's MRC and keeps it suspect when
        "the parameters of the MRC curve show a significantly higher total
        memory need"; we flag a relative change of ``relative`` or more in
        either parameter, in either direction (a *flatter* curve — lower
        acceptable memory — also signals an access-pattern change, as in the
        index-drop scenario).  Tiny working sets quantise coarsely, so the
        change must also clear ``min_absolute_pages`` — a 40-page jitter in
        a 100-page class is noise, not a plan change.
        """
        if relative < 0:
            raise ValueError(f"relative threshold must be non-negative: {relative}")

        def significant(new: int, old: int) -> bool:
            diff = abs(new - old)
            return diff >= relative * max(old, 1) and diff >= min_absolute_pages

        return significant(self.total_memory, other.total_memory) or significant(
            self.acceptable_memory, other.acceptable_memory
        )


@dataclass(frozen=True)
class MRCCacheKey:
    """What a cached curve is valid for.

    * ``window_version`` — the access window's ``total_seen`` watermark (a
      strictly increasing version number: any page access advances it, so
      an advanced window can never serve a stale curve);
    * ``pool_pages`` — the buffer-pool size the parameters were extracted
      against (a resize changes the total/acceptable clamping, so the curve
      must be re-derived);
    * ``variant`` — which slice of the window was analysed (full window,
      recent tail, assessment pair, ...), including anything else the slice
      bounds depend on.
    """

    window_version: int
    pool_pages: int
    variant: str = "full"


class MRCCache:
    """Per-query-class memo of the most recent stack-distance analysis.

    Stack-distance analysis is the O(N log N) hot path of diagnosis; when a
    class's access window has not advanced since the last recomputation the
    previous curve is *exactly* correct and the whole pass can be skipped.
    Each class keeps one entry (the diagnosis loop only ever wants the
    latest window), invalidated implicitly when the lookup key no longer
    matches — window advance, buffer-pool resize, or a different slice
    variant — and explicitly via :meth:`invalidate`.

    Hits and misses are published to the metric registry as
    ``mrc.cache.hits`` / ``mrc.cache.misses`` so regression tests can
    assert that a stale curve is never served (a hit never increments the
    ``mrc.recomputations`` counter).
    """

    def __init__(self, registry: MetricRegistry | None = None) -> None:
        self.registry = registry if registry is not None else NULL_REGISTRY
        self._entries: dict[str, tuple[MRCCacheKey, object]] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, context_key: str, key: MRCCacheKey):
        """The cached value if it is still valid for ``key``, else ``None``.

        A mismatching entry (advanced window, resized pool) is dropped on
        the spot: it can never become valid again.
        """
        entry = self._entries.get(context_key)
        if entry is not None and entry[0] == key:
            self.hits += 1
            self.registry.counter("mrc.cache.hits").inc()
            return entry[1]
        if entry is not None:
            del self._entries[context_key]
        self.misses += 1
        self.registry.counter("mrc.cache.misses").inc()
        return None

    def put(self, context_key: str, key: MRCCacheKey, value) -> None:
        self._entries[context_key] = (key, value)

    def invalidate(self, context_key: str) -> None:
        """Explicitly drop one class's entry (e.g. its window was cleared)."""
        self._entries.pop(context_key, None)

    def clear(self) -> None:
        self._entries.clear()


class MRCTracker:
    """Per-query-context MRC bookkeeping.

    MRCs are computed when a class is first scheduled and are *not*
    recomputed unless an SLA violation occurs and the class's memory
    counters show outliers (paper §3.3) — recomputation is the expensive
    step this laziness is protecting.
    """

    def __init__(
        self,
        server_memory_pages: int,
        acceptable_threshold: float = DEFAULT_ACCEPTABLE_THRESHOLD,
        registry: MetricRegistry | None = None,
    ) -> None:
        if server_memory_pages <= 0:
            raise ValueError(
                f"server memory must be positive: {server_memory_pages}"
            )
        self.server_memory_pages = server_memory_pages
        self.acceptable_threshold = acceptable_threshold
        self.registry = registry if registry is not None else NULL_REGISTRY
        self._curves: dict[str, MissRatioCurve] = {}
        self._parameters: dict[str, MRCParameters] = {}
        self.recomputations = 0

    def _record_recomputation(self, context_key: str, trace_length: int) -> None:
        self.recomputations += 1
        app = context_key.split("/", 1)[0]
        self.registry.counter("mrc.recomputations", app=app).inc()
        self.registry.histogram("mrc.trace_length").observe(trace_length)

    def has(self, context_key: str) -> bool:
        return context_key in self._parameters

    def compute(
        self, context_key: str, trace: Sequence[int] | np.ndarray
    ) -> MRCParameters:
        """(Re)compute the curve of ``context_key`` from a page trace."""
        curve = MissRatioCurve.from_trace(trace)
        params = curve.parameters(
            self.server_memory_pages, self.acceptable_threshold
        )
        self._curves[context_key] = curve
        self._parameters[context_key] = params
        self._record_recomputation(context_key, len(trace))
        return params

    def store(
        self, context_key: str, curve: MissRatioCurve, params: MRCParameters
    ) -> None:
        """Record an externally computed curve (counts as a recomputation)."""
        self._curves[context_key] = curve
        self._parameters[context_key] = params
        self._record_recomputation(context_key, curve.total_accesses)

    def restore(
        self, context_key: str, curve: MissRatioCurve, params: MRCParameters
    ) -> None:
        """Re-install a previously computed curve served from a cache.

        Unlike :meth:`store` this does **not** count as a recomputation:
        no stack-distance work happened, and the ``mrc.recomputations``
        counter is the regression suite's evidence of exactly that.
        """
        self._curves[context_key] = curve
        self._parameters[context_key] = params

    def parameters_of(self, context_key: str) -> MRCParameters:
        try:
            return self._parameters[context_key]
        except KeyError:
            raise KeyError(f"no MRC recorded for context {context_key!r}") from None

    def curve_of(self, context_key: str) -> MissRatioCurve:
        try:
            return self._curves[context_key]
        except KeyError:
            raise KeyError(f"no MRC recorded for context {context_key!r}") from None

    def forget(self, context_key: str) -> None:
        self._curves.pop(context_key, None)
        self._parameters.pop(context_key, None)

    def contexts(self) -> list[str]:
        return sorted(self._parameters)
