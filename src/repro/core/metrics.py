"""Metric definitions and per-context metric vectors.

Monitoring operates at three levels (paper §3.3): system metrics per server
(CPU, I/O, memory), application metrics per scheduler (average latency and
throughput for SLA checks), and DBMS metrics per query class.  This module
defines the per-query-class vector the outlier detector consumes; system and
application metrics live with the cluster and scheduler models.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..engine.statslog import ClassIntervalStats

__all__ = ["Metric", "MEMORY_METRICS", "MetricVector", "vector_from_stats"]


class Metric(str, Enum):
    """The per-query-class metrics tracked by the engine instrumentation."""

    LATENCY = "latency"
    THROUGHPUT = "throughput"
    PAGE_ACCESSES = "page_accesses"
    MISSES = "misses"
    READAHEADS = "readaheads"
    IO_BLOCK_REQUESTS = "io_block_requests"
    LOCK_WAITS = "lock_waits"
    LOCK_WAIT_TIME = "lock_wait_time"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


MEMORY_METRICS: tuple[Metric, ...] = (
    Metric.PAGE_ACCESSES,
    Metric.MISSES,
    Metric.READAHEADS,
)
"""The memory-related counters that gate MRC recomputation (paper §3.3.2)."""


@dataclass(frozen=True)
class MetricVector:
    """One query context's metric values over one measurement interval."""

    context_key: str
    values: dict[Metric, float]

    def get(self, metric: Metric) -> float:
        return self.values.get(metric, 0.0)

    def __getitem__(self, metric: Metric) -> float:
        return self.get(metric)

    def ratio_to(self, stable: "MetricVector") -> dict[Metric, float]:
        """Current value divided by the stable-state value, per metric.

        A stable value of zero gets one Laplace pseudo-count: the ratio
        becomes ``(current + 1) / (0 + 1)``, so the inflation scales with
        the absolute change instead of a flat cap.  A class whose misses
        drift 0 -> 3 reads 4.0 — inside any reasonable fence — while a
        genuine surge 0 -> 20 000 still lands far outside every fence,
        which is what kills the collateral IQR flags on classes with
        near-zero stable misses.  Non-zero stable values keep the exact
        ``current / base`` ratio.
        """
        ratios: dict[Metric, float] = {}
        for metric, current in self.values.items():
            base = stable.get(metric)
            if base > 0:
                ratios[metric] = current / base
            elif current > 0:
                ratios[metric] = current + 1.0  # Laplace: (current+1)/(0+1)
            else:
                ratios[metric] = 1.0  # 0/0: unchanged
        return ratios

    def metrics(self) -> list[Metric]:
        return list(self.values.keys())


def vector_from_stats(
    stats: ClassIntervalStats, interval_length: float
) -> MetricVector:
    """Convert an engine-log interval accumulator to a metric vector."""
    if interval_length <= 0:
        raise ValueError(f"interval length must be positive: {interval_length}")
    return MetricVector(
        context_key=stats.context_key,
        values={
            Metric.LATENCY: stats.mean_latency,
            Metric.THROUGHPUT: stats.throughput(interval_length),
            Metric.PAGE_ACCESSES: float(stats.page_accesses),
            Metric.MISSES: float(stats.misses),
            Metric.READAHEADS: float(stats.readaheads),
            Metric.IO_BLOCK_REQUESTS: float(stats.io_block_requests),
            Metric.LOCK_WAITS: float(stats.lock_waits),
            Metric.LOCK_WAIT_TIME: stats.lock_wait_time,
        },
    )
