"""Selective retuning: from an SLA violation to a fine-grained action.

This module encodes the paper's decision procedure (§3.2–§3.3.3) as a pure
function from observations to *actions*; the controller applies the actions
to the cluster.  The procedure, in order:

1. **CPU saturation** on any server running the application → reactively
   provision another replica from the pool (§3.3.3, Figure 3).
2. **I/O interference** on a server (e.g. a saturated Xen dom0 channel) →
   remove query contexts from that server in decreasing order of their I/O
   rate until the problem normalises (§3.3.3, Table 3).
3. **Memory interference** (§3.3.1–§3.3.2): find outlier contexts on the
   memory-related counters; recompute the MRC of each problem class; keep as
   *suspect* the classes whose MRC parameters changed significantly, plus
   every newly scheduled class (no prior MRC).  If the pool cannot meet the
   total memory need of all contexts, search for per-suspect quotas that
   keep everyone at their acceptable miss ratio; enforce quotas if found,
   otherwise reschedule the top suspect onto a different replica.
4. **No outliers** → retry the memory path on the top-k heavyweight classes.
5. Nothing worked → **coarse-grained fallback**: allocate new replicas and
   isolate applications until SLAs are met.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from .analyzer import LogAnalyzer
from ..cluster.scheduler import Scheduler
from ..obs import NULL_OBS, Observability
from .metrics import Metric
from .mrc import MRCParameters
from .outliers import OutlierReport, top_k_heavyweight
from .quota import find_quotas, placement_fits_totals

__all__ = [
    "ActionKind",
    "Action",
    "DiagnosisConfig",
    "ReplicaView",
    "Diagnosis",
    "diagnose",
]


class ActionKind(str, Enum):
    """Every reaction the selective-retuning procedure can emit."""

    PROVISION_REPLICA = "provision_replica"
    APPLY_QUOTAS = "apply_quotas"
    RESCHEDULE_CLASS = "reschedule_class"
    REMOVE_CLASS_FOR_IO = "remove_class_for_io"
    REPORT_LOCK_CONTENTION = "report_lock_contention"
    COARSE_FALLBACK = "coarse_fallback"
    NO_ACTION = "no_action"


@dataclass(frozen=True)
class Action:
    """One retuning decision, with enough detail for the controller to act."""

    kind: ActionKind
    app: str
    reason: str
    replica: str | None = None
    context_key: str | None = None
    quotas: tuple[tuple[str, int], ...] = ()
    epoch: int = 0
    """Controller incarnation that decided this action.  0 means unstamped
    (no recovery installed); the controller's fenced apply path stamps the
    current epoch, and actuation layers reject anything older — an
    in-flight action from a crashed incarnation must never land."""

    def quota_map(self) -> dict[str, int]:
        return dict(self.quotas)


@dataclass(frozen=True)
class DiagnosisConfig:
    """Tunables of the decision procedure."""

    top_k: int = 3
    mrc_change_threshold: float = 0.25
    min_window_accesses: int = 2000
    new_class_horizon: int = 5
    min_quota_pages: int = 256
    containment_traffic_share: float = 0.25
    use_outlier_detection: bool = True  # False = always top-k (ablation)
    lock_wait_share_threshold: float = 0.2

    def __post_init__(self) -> None:
        if self.top_k <= 0:
            raise ValueError(f"top_k must be positive: {self.top_k}")
        if self.mrc_change_threshold < 0:
            raise ValueError("mrc change threshold must be non-negative")


@dataclass
class ReplicaView:
    """What diagnosis sees of one replica: its analyzer and host health."""

    replica_name: str
    analyzer: LogAnalyzer
    cpu_saturated: bool
    io_saturated: bool
    pool_pages: int
    interval_length: float = 10.0


@dataclass
class Diagnosis:
    """The full outcome: actions plus the evidence behind them."""

    app: str
    actions: list[Action] = field(default_factory=list)
    outlier_reports: dict[str, OutlierReport] = field(default_factory=dict)
    suspects: dict[str, list[str]] = field(default_factory=dict)

    @property
    def primary(self) -> Action:
        if not self.actions:
            return Action(
                kind=ActionKind.NO_ACTION, app=self.app, reason="nothing detected"
            )
        return self.actions[0]


def diagnose(
    app: str,
    scheduler: Scheduler,
    views: list[ReplicaView],
    config: DiagnosisConfig | None = None,
    obs: Observability | None = None,
) -> Diagnosis:
    """Run the full decision procedure for one violated application.

    With an :class:`Observability` handle the run is wrapped in a
    ``diagnosis.run`` span carrying the app, the outlier context keys it
    found, and the primary :class:`ActionKind` it chose; the MRC
    recomputations it triggers nest underneath as ``mrc.recompute`` spans.
    """
    config = config if config is not None else DiagnosisConfig()
    obs = obs if obs is not None else NULL_OBS
    result = Diagnosis(app=app)
    with obs.tracer.span("diagnosis.run", attrs={"app": app}) as span:
        span.add_cost(len(views))
        _run_procedure(app, scheduler, views, config, result)
        span.set_attr("action", result.primary.kind.value)
        outliers = sorted(
            {
                key
                for report in result.outlier_reports.values()
                for key in report.memory_outlier_contexts()
            }
        )
        if outliers:
            span.set_attr("outliers", ",".join(outliers))
        suspects = sorted(
            {key for keys in result.suspects.values() for key in keys}
        )
        if suspects:
            span.set_attr("suspects", ",".join(suspects))
    return result


def _run_procedure(
    app: str,
    scheduler: Scheduler,
    views: list[ReplicaView],
    config: DiagnosisConfig,
    result: Diagnosis,
) -> Diagnosis:
    # --- Step 1: CPU saturation → reactive provisioning ----------------- #
    for view in views:
        if view.cpu_saturated:
            result.actions.append(
                Action(
                    kind=ActionKind.PROVISION_REPLICA,
                    app=app,
                    reason=(
                        f"CPU saturated on host of replica {view.replica_name!r}"
                    ),
                    replica=view.replica_name,
                )
            )
    if result.actions:
        return result

    # --- Step 2: I/O interference → shed heaviest I/O context ----------- #
    for view in views:
        if view.io_saturated:
            context = _heaviest_io_context(view, app)
            if context is not None:
                result.actions.append(
                    Action(
                        kind=ActionKind.REMOVE_CLASS_FOR_IO,
                        app=app,
                        reason=(
                            f"I/O channel saturated on replica "
                            f"{view.replica_name!r}; {context!r} has the "
                            "highest I/O rate"
                        ),
                        replica=view.replica_name,
                        context_key=context,
                    )
                )
    if result.actions:
        return result

    # --- Step 2.5: lock contention (the paper's stated future work) ------ #
    # When lock waits account for a large share of the application's time,
    # neither memory nor I/O is the story: report the aggressor class and
    # any deadlock-prone cycles instead of retuning resources.
    for view in views:
        action = _lock_diagnosis(app, view, config)
        if action is not None:
            result.actions.append(action)
    if result.actions:
        return result

    # --- Steps 3–4: memory interference ---------------------------------- #
    for view in views:
        action = _memory_diagnosis(app, view, config, result)
        if action is not None:
            result.actions.append(action)
    if result.actions:
        return result

    # --- Step 5: nothing actionable -------------------------------------- #
    # The controller escalates to the coarse-grained fallback when this
    # persists past its patience budget; diagnosis itself stays quiet, since
    # "no suspects yet" may simply mean the access windows are still filling.
    result.actions.append(
        Action(
            kind=ActionKind.NO_ACTION,
            app=app,
            reason="fine-grained diagnosis found no actionable context",
        )
    )
    return result


def _heaviest_io_context(view: ReplicaView, app: str) -> str | None:
    """The app's context with the highest I/O block-request rate here."""
    vectors = view.analyzer.current_vectors(app)
    if not vectors:
        return None
    ranked = sorted(
        vectors.items(),
        key=lambda item: (-item[1].get(Metric.IO_BLOCK_REQUESTS), item[0]),
    )
    top_key, top_vector = ranked[0]
    if top_vector.get(Metric.IO_BLOCK_REQUESTS) <= 0:
        return None
    return top_key


def _lock_diagnosis(
    app: str,
    view: ReplicaView,
    config: DiagnosisConfig,
) -> Action | None:
    """Detect lock-wait-dominated violations and name the aggressor class.

    Unlike the memory and I/O paths there is no resource to retune: writes
    run on every replica under read-one-write-all, so neither a quota nor a
    reschedule removes a write-lock conflict.  The diagnosis therefore
    *reports* — the class holding the locks everyone waits on, and any
    waits-for cycles — which is precisely the narrowing-down the paper's
    future-work section asks of outlier detection.
    """
    vectors = view.analyzer.current_vectors(app)
    if not vectors:
        return None
    total_lock_wait = sum(v.get(Metric.LOCK_WAIT_TIME) for v in vectors.values())
    total_latency = sum(
        v.get(Metric.LATENCY) * v.get(Metric.THROUGHPUT) * view.interval_length
        for v in vectors.values()
    )
    if total_latency <= 0:
        return None
    share = total_lock_wait / total_latency
    if share < config.lock_wait_share_threshold:
        return None
    graph = view.analyzer.last_waits_for
    aggressor = None
    if graph is not None:
        held_weight: dict[str, int] = {}
        for _, holder, weight in graph.edges():
            held_weight[holder] = held_weight.get(holder, 0) + weight
        if held_weight:
            aggressor = max(
                held_weight.items(), key=lambda item: (item[1], item[0])
            )[0]
    cycles = graph.find_cycles() if graph is not None else []
    reason = (
        f"lock waits are {share:.0%} of {app!r}'s time on replica "
        f"{view.replica_name!r}"
    )
    if aggressor:
        reason += f"; most-waited-on class: {aggressor!r}"
    if cycles:
        reason += f"; deadlock-prone cycles: {cycles}"
    return Action(
        kind=ActionKind.REPORT_LOCK_CONTENTION,
        app=app,
        reason=reason,
        replica=view.replica_name,
        context_key=aggressor,
    )


def _memory_diagnosis(
    app: str,
    view: ReplicaView,
    config: DiagnosisConfig,
    result: Diagnosis,
) -> Action | None:
    """Steps 3–4 of the procedure on one replica."""
    analyzer = view.analyzer
    report = analyzer.detect(app)
    result.outlier_reports[view.replica_name] = report

    candidates = (
        report.memory_outlier_contexts() if config.use_outlier_detection else []
    )
    if not candidates:
        # Step 4 fallback: top-k heavyweight memory contexts (also the
        # candidate source when outlier detection is ablated away).
        candidates = analyzer.heavyweight_contexts(app, k=config.top_k)
    # Newly scheduled classes (no MRC yet) are problem classes directly —
    # across *all* applications sharing this engine, since a new workload in
    # a shared buffer pool is a prime suspect for the incumbent's violation
    # (the paper computes MRCs for the newly added RUBiS queries while
    # diagnosing TPC-W).
    fresh = analyzer.new_contexts(horizon=config.new_class_horizon)
    candidates = sorted(set(candidates) | set(fresh))
    if not candidates:
        return None
    # Rank candidates by their memory-metric weight so the "top ranking
    # problem query" (the paper's phrase) is assessed first.
    engine_vectors = analyzer.current_vectors()
    ranked = top_k_heavyweight(
        {key: engine_vectors[key] for key in candidates if key in engine_vectors},
        k=max(1, len(candidates)),
    ) or candidates

    suspects: dict[str, MRCParameters] = {}
    for context in ranked:
        status, recomputed = analyzer.assess_recent_behaviour(
            context,
            config.mrc_change_threshold,
            min_tail=config.min_window_accesses,
            new_class_horizon=config.new_class_horizon,
        )
        if status in ("new", "changed") and recomputed is not None:
            suspects[context] = recomputed
    result.suspects[view.replica_name] = sorted(suspects)
    if not suspects:
        return None

    # Make sure every active context has an MRC so the feasibility check and
    # quota search see the whole server.
    active = analyzer.current_vectors(app)
    all_params: dict[str, MRCParameters] = {}
    for context in active:
        params = analyzer.ensure_mrc(context)
        if params is not None:
            all_params[context] = params
    # Contexts of *other* applications sharing this engine count too: memory
    # interference is cross-application by nature (Table 2).
    for context in analyzer.current_vectors():
        if context in all_params:
            continue
        params = analyzer.ensure_mrc(context)
        if params is not None:
            all_params[context] = params

    if placement_fits_totals(all_params, view.pool_pages):
        # Working sets fit outright, but LRU does not respect MRC totals: a
        # scan-like suspect (flat curve, near-zero memory *need*) still
        # pollutes the pool with its traffic.  When suspects carry a large
        # share of the engine's page accesses, apply containment quotas;
        # otherwise memory is genuinely not the bottleneck here.
        accesses = {
            key: vector.get(Metric.PAGE_ACCESSES)
            for key, vector in analyzer.current_vectors().items()
        }
        total_accesses = sum(accesses.values())
        scan_like = [
            key
            for key, params in suspects.items()
            if params.ideal_miss_ratio >= 0.5  # flat curve: caching is futile
        ]
        suspect_share = (
            sum(accesses.get(key, 0.0) for key in scan_like) / total_accesses
            if total_accesses > 0
            else 0.0
        )
        if suspect_share < config.containment_traffic_share:
            return None

    others = {
        key: params for key, params in all_params.items() if key not in suspects
    }
    plan = find_quotas(
        suspects, others, view.pool_pages, min_quota=config.min_quota_pages
    )
    if plan.feasible:
        return Action(
            kind=ActionKind.APPLY_QUOTAS,
            app=app,
            reason=(
                f"memory interference on replica {view.replica_name!r}; "
                f"quotas keep all contexts at acceptable miss ratios"
            ),
            replica=view.replica_name,
            quotas=tuple(sorted(plan.quotas.items())),
        )

    # No feasible quotas: reschedule the hungriest suspect elsewhere.
    hungriest = max(
        suspects.items(), key=lambda item: (item[1].acceptable_memory, item[0])
    )[0]
    return Action(
        kind=ActionKind.RESCHEDULE_CLASS,
        app=app,
        reason=(
            f"no feasible quotas on replica {view.replica_name!r} "
            f"(shortfall {plan.shortfall} pages); isolating {hungriest!r}"
        ),
        replica=view.replica_name,
        context_key=hungriest,
    )
