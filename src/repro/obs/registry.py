"""Metric instruments and the registry that owns them.

Three instrument kinds, mirroring the usual telemetry vocabulary:

* :class:`Counter` — a monotonically increasing total (actions taken, MRC
  recomputations, queries routed);
* :class:`Gauge` — a point-in-time value (queue depth, resident pages);
* :class:`Histogram` — a fixed-bucket distribution with conservation-safe
  merging and monotone quantile estimation (interval latencies, trace
  lengths).

Instruments are keyed by ``(name, labels)``; asking the registry for the
same key twice returns the same instrument, so call sites never cache
handles.  Everything is plain Python arithmetic over ints and floats — no
wall clock, no randomness — which keeps snapshots byte-reproducible.
"""

from __future__ import annotations

from bisect import bisect_left
from collections.abc import Iterable, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "DEFAULT_BUCKETS",
]

LabelItems = tuple[tuple[str, str], ...]

DEFAULT_BUCKETS: tuple[float, ...] = tuple(
    float(f"{mantissa}e{exponent}")
    for exponent in range(-4, 6)
    for mantissa in (1, 2, 5)
)
"""A 1-2-5 geometric ladder from 1e-4 to 5e5: wide enough for both
sub-second latencies and page/access counts without per-site tuning."""


def _label_key(labels: dict[str, object]) -> LabelItems:
    """Canonical, order-insensitive form of a label set."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "labels", "value")

    kind = "counter"

    def __init__(self, name: str, labels: LabelItems = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease: {amount}")
        self.value += amount

    def snapshot(self) -> dict:
        return {
            "type": self.kind,
            "name": self.name,
            "labels": dict(self.labels),
            "value": self.value,
        }


class Gauge:
    """A point-in-time value that may move in either direction."""

    __slots__ = ("name", "labels", "value")

    kind = "gauge"

    def __init__(self, name: str, labels: LabelItems = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def add(self, delta: float) -> None:
        self.value += delta

    def snapshot(self) -> dict:
        return {
            "type": self.kind,
            "name": self.name,
            "labels": dict(self.labels),
            "value": self.value,
        }


class Histogram:
    """A fixed-bucket histogram with merge and quantile estimation.

    ``bounds`` are strictly increasing bucket *upper* bounds; an observation
    ``v`` lands in the first bucket whose bound is ``>= v``, and values above
    the last bound land in an implicit overflow bucket.  Two histograms with
    identical bounds merge by adding bucket counts — merging is associative
    and commutative on the integer state (counts, min, max), so sharded
    registries can be combined in any order without losing observations.
    """

    __slots__ = ("name", "labels", "bounds", "bucket_counts", "count", "sum",
                 "_min", "_max")

    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: LabelItems = (),
        bounds: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        bounds = tuple(float(b) for b in bounds)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b >= c for b, c in zip(bounds, bounds[1:])):
            raise ValueError(f"bucket bounds must be strictly increasing: {bounds}")
        self.name = name
        self.labels = labels
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)  # last slot = overflow
        self.count = 0
        self.sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    def observe_many(self, values: Iterable[float]) -> None:
        for value in values:
            self.observe(value)

    @property
    def min(self) -> float:
        return self._min if self.count else 0.0

    @property
    def max(self) -> float:
        return self._max if self.count else 0.0

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def merge(self, other: "Histogram") -> "Histogram":
        """A new histogram holding both operands' observations."""
        if self.bounds != other.bounds:
            raise ValueError(
                f"cannot merge histograms with different bounds: "
                f"{self.bounds} vs {other.bounds}"
            )
        merged = Histogram(self.name, self.labels, self.bounds)
        merged.bucket_counts = [
            a + b for a, b in zip(self.bucket_counts, other.bucket_counts)
        ]
        merged.count = self.count + other.count
        merged.sum = self.sum + other.sum
        merged._min = min(self._min, other._min)
        merged._max = max(self._max, other._max)
        return merged

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile by linear interpolation within the
        bucket containing the target rank.

        The estimate is clamped to the observed ``[min, max]`` range and is
        monotone non-decreasing in ``q`` by construction: the target rank
        grows with ``q``, cumulative counts fix the bucket walk, and the
        per-bucket interpolant is an increasing function of the rank.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1]: {q}")
        if self.count == 0:
            return 0.0
        target = q * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.bucket_counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= target:
                lower = self.bounds[index - 1] if index > 0 else self._min
                upper = (
                    self.bounds[index]
                    if index < len(self.bounds)
                    else self._max
                )
                lower = min(lower, upper)
                fraction = (target - cumulative) / bucket_count
                fraction = min(max(fraction, 0.0), 1.0)
                value = lower + (upper - lower) * fraction
                return min(max(value, self._min), self._max)
            cumulative += bucket_count
        return self._max

    def snapshot(self) -> dict:
        return {
            "type": self.kind,
            "name": self.name,
            "labels": dict(self.labels),
            "bounds": list(self.bounds),
            "bucket_counts": list(self.bucket_counts),
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
        }


class MetricRegistry:
    """Owns every instrument of one telemetry domain.

    Lookup is get-or-create: ``registry.counter("x", app="tpcw")`` always
    returns the same :class:`Counter` for the same name + labels (labels are
    order-insensitive).  Registering the same key under two different
    instrument kinds is an error.
    """

    enabled = True

    def __init__(self) -> None:
        self._instruments: dict[tuple[str, LabelItems], object] = {}

    def _get(self, factory, name: str, labels: dict, **kwargs):
        key = (name, _label_key(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = factory(name, key[1], **kwargs)
            self._instruments[key] = instrument
            return instrument
        if not isinstance(instrument, factory):
            raise TypeError(
                f"metric {name!r} {dict(key[1])} is a "
                f"{type(instrument).__name__}, not a {factory.__name__}"
            )
        return instrument

    def counter(self, name: str, **labels) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(
        self, name: str, buckets: Sequence[float] | None = None, **labels
    ) -> Histogram:
        kwargs = {} if buckets is None else {"bounds": buckets}
        return self._get(Histogram, name, labels, **kwargs)

    def instruments(self) -> list:
        """Every instrument, sorted by (name, labels) for stable output."""
        return [self._instruments[key] for key in sorted(self._instruments)]

    def snapshot(self) -> list[dict]:
        """JSON-ready records of every instrument, deterministically ordered."""
        return [instrument.snapshot() for instrument in self.instruments()]

    def value(self, name: str, **labels) -> float:
        """Convenience: current value of a counter/gauge (0.0 if absent)."""
        instrument = self._instruments.get((name, _label_key(labels)))
        if instrument is None:
            return 0.0
        return getattr(instrument, "value", 0.0)

    def merge(self, other: "MetricRegistry") -> None:
        """Fold another registry's instruments into this one.

        Counters add, histograms merge bucket-wise, gauges take the other
        registry's (more recent) value.
        """
        for key, instrument in other._instruments.items():
            name, labels = key
            if isinstance(instrument, Counter):
                self._get(Counter, name, dict(labels)).inc(instrument.value)
            elif isinstance(instrument, Histogram):
                mine = self._get(
                    Histogram, name, dict(labels), bounds=instrument.bounds
                )
                self._instruments[key] = mine.merge(instrument)
            elif isinstance(instrument, Gauge):
                self._get(Gauge, name, dict(labels)).set(instrument.value)

    def reset(self) -> None:
        self._instruments.clear()


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass

    def add(self, delta: float) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


class NullRegistry(MetricRegistry):
    """The zero-overhead default: hands out shared no-op instruments."""

    enabled = False

    def __init__(self) -> None:
        super().__init__()
        self._counter = _NullCounter("null")
        self._gauge = _NullGauge("null")
        self._histogram = _NullHistogram("null", bounds=(1.0,))

    def counter(self, name: str, **labels) -> Counter:
        return self._counter

    def gauge(self, name: str, **labels) -> Gauge:
        return self._gauge

    def histogram(
        self, name: str, buckets: Sequence[float] | None = None, **labels
    ) -> Histogram:
        return self._histogram

    def snapshot(self) -> list[dict]:
        return []

    def merge(self, other: MetricRegistry) -> None:
        pass


NULL_REGISTRY = NullRegistry()
"""Shared no-op registry; safe to use as a default everywhere."""
