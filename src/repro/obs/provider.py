"""The observability handle instrumented components share.

One :class:`Observability` bundles a metric registry and a tracer; the
controller hands its handle down to everything it wires (schedulers,
decision managers, log analyzers, MRC trackers), so a single object enables
telemetry for an entire cluster.  The default is :data:`NULL_OBS`, whose
parts are shared no-op singletons — instrumented call sites pay one
attribute lookup and an empty method call, nothing more.
"""

from __future__ import annotations

from .registry import MetricRegistry, NULL_REGISTRY
from .tracer import Tracer, NULL_TRACER

__all__ = ["Observability", "NULL_OBS"]


class Observability:
    """A registry + tracer pair, enabled by construction."""

    def __init__(
        self,
        registry: MetricRegistry | None = None,
        tracer: Tracer | None = None,
        clock=None,
        enabled: bool = True,
    ) -> None:
        self.registry = registry if registry is not None else MetricRegistry()
        self.tracer = tracer if tracer is not None else Tracer(clock)
        self.enabled = enabled

    def bind_clock(self, clock) -> None:
        """Point the tracer at the simulation clock driving the run."""
        if self.enabled:  # never mutate the shared no-op singletons
            self.tracer.bind_clock(clock)

    def reset(self) -> None:
        self.registry.reset()
        self.tracer.reset()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "enabled" if self.enabled else "disabled"
        return f"Observability({state})"


NULL_OBS = Observability(
    registry=NULL_REGISTRY, tracer=NULL_TRACER, enabled=False
)
"""The zero-overhead default every instrumented component starts with."""
