"""Summarise exported telemetry: the ``repro obs report`` backend.

Parses the JSONL produced by :mod:`repro.obs.export` (or consumes a live
:class:`~repro.obs.provider.Observability`) and renders the three views an
operator of the retuning pipeline wants first:

* **per-stage span profile** — calls, simulated time and deterministic work
  units per pipeline stage, ranked by work;
* **MRC recomputations per application** — the paper's expensive step, and
  the laziness the design is protecting;
* **action-kind histogram** — what the controller actually decided;
* **machine-allocation timeline** — the resource manager's replica
  allocate/release events (Figure 3's currency), when the input telemetry
  carries ``allocation`` records from
  :func:`repro.analysis.export.allocation_records`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from collections.abc import Iterable

from ..analysis.report import Table

__all__ = ["StageProfile", "TelemetrySummary", "summarize_telemetry"]


@dataclass(frozen=True)
class StageProfile:
    """Aggregate of every span sharing one stage name."""

    name: str
    calls: int
    sim_seconds: float
    work_units: float

    @property
    def mean_work(self) -> float:
        return self.work_units / self.calls if self.calls else 0.0


@dataclass
class TelemetrySummary:
    """Parsed telemetry, queryable and renderable."""

    meta: dict = field(default_factory=dict)
    spans: list[dict] = field(default_factory=list)
    metrics: list[dict] = field(default_factory=list)
    allocations: list[dict] = field(default_factory=list)
    quality: list[dict] = field(default_factory=list)
    forecasts: list[dict] = field(default_factory=list)

    @classmethod
    def from_lines(cls, lines: Iterable[str]) -> "TelemetrySummary":
        summary = cls()
        for line in lines:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            kind = record.get("record")
            if kind == "meta":
                summary.meta = record
            elif kind == "span":
                summary.spans.append(record)
            elif kind == "metric":
                summary.metrics.append(record)
            elif kind == "allocation":
                summary.allocations.append(record)
            elif kind == "quality":
                summary.quality.append(record)
            elif kind == "forecast":
                summary.forecasts.append(record)
            else:
                raise ValueError(f"unknown telemetry record type: {kind!r}")
        return summary

    @classmethod
    def from_observability(
        cls, observability, meta: dict | None = None
    ) -> "TelemetrySummary":
        from .export import telemetry_lines

        return cls.from_lines(telemetry_lines(observability, meta))

    # ------------------------------------------------------------------ #
    # Queries                                                            #
    # ------------------------------------------------------------------ #

    def stage_profiles(self) -> list[StageProfile]:
        """Per-stage aggregates, heaviest (by work, then time) first."""
        grouped: dict[str, list[dict]] = {}
        for span in self.spans:
            grouped.setdefault(span["name"], []).append(span)
        profiles = [
            StageProfile(
                name=name,
                calls=len(spans),
                sim_seconds=sum(s["end"] - s["start"] for s in spans),
                work_units=sum(s["cost"] for s in spans),
            )
            for name, spans in grouped.items()
        ]
        profiles.sort(
            key=lambda p: (-p.work_units, -p.sim_seconds, p.name)
        )
        return profiles

    def _counter_values(self, name: str) -> list[tuple[dict, float]]:
        return [
            (record["labels"], record["value"])
            for record in self.metrics
            if record["type"] == "counter" and record["name"] == name
        ]

    def mrc_recomputations_by_app(self) -> dict[str, float]:
        """Per-application count of the pipeline's expensive step."""
        counts: dict[str, float] = {}
        for labels, value in self._counter_values("mrc.recomputations"):
            app = labels.get("app", "?")
            counts[app] = counts.get(app, 0.0) + value
        return counts

    def action_histogram(self) -> dict[str, float]:
        """Emitted controller actions, keyed by :class:`ActionKind` value."""
        counts: dict[str, float] = {}
        for labels, value in self._counter_values("controller.actions"):
            kind = labels.get("kind", "?")
            counts[kind] = counts.get(kind, 0.0) + value
        return counts

    def sla_violations_by_app(self) -> dict[str, float]:
        counts: dict[str, float] = {}
        for labels, value in self._counter_values("scheduler.sla_violations"):
            app = labels.get("app", "?")
            counts[app] = counts.get(app, 0.0) + value
        return counts

    # ------------------------------------------------------------------ #
    # Rendering                                                          #
    # ------------------------------------------------------------------ #

    def render(self) -> str:
        sections = [self._render_meta(), self._render_stages(),
                    self._render_mrc(), self._render_actions(),
                    self._render_allocations(), self._render_quality(),
                    self._render_forecasts()]
        return "\n\n".join(section for section in sections if section)

    def _render_meta(self) -> str:
        parts = [
            f"{key}={value}"
            for key, value in sorted(self.meta.items())
            if key not in ("record", "version")
        ]
        header = "Telemetry report"
        if parts:
            header += " — " + ", ".join(parts)
        spans = len(self.spans)
        metrics = len(self.metrics)
        return f"{header}\n({spans} spans, {metrics} metric series)"

    def _render_stages(self) -> str:
        table = Table(
            title="Pipeline stages (top spans by work)",
            headers=["stage", "calls", "sim time (s)", "work units",
                     "work/call"],
        )
        for profile in self.stage_profiles():
            table.add_row(
                profile.name,
                profile.calls,
                f"{profile.sim_seconds:.1f}",
                f"{profile.work_units:.0f}",
                f"{profile.mean_work:.1f}",
            )
        if not self.spans:
            table.add_row("(no spans recorded)", "-", "-", "-", "-")
        return table.render()

    def _render_mrc(self) -> str:
        table = Table(
            title="MRC recomputations per application",
            headers=["app", "recomputations"],
        )
        counts = self.mrc_recomputations_by_app()
        for app in sorted(counts):
            table.add_row(app, f"{counts[app]:.0f}")
        if not counts:
            table.add_row("(none)", "0")
        return table.render()

    def _render_actions(self) -> str:
        table = Table(
            title="Controller actions by kind",
            headers=["action kind", "count"],
        )
        counts = self.action_histogram()
        for kind in sorted(counts):
            table.add_row(kind, f"{counts[kind]:.0f}")
        if not counts:
            table.add_row("(no actions emitted)", "0")
        violations = self.sla_violations_by_app()
        rendered = table.render()
        if violations:
            noted = ", ".join(
                f"{app}: {count:.0f}" for app, count in sorted(violations.items())
            )
            rendered += f"\n\nSLA violations per app: {noted}"
        return rendered


    def _render_allocations(self) -> str:
        # Only rendered when allocation records are present: fault-free
        # telemetry exports carry none, keeping their goldens untouched.
        if not self.allocations:
            return ""
        table = Table(
            title="Machine allocation timeline",
            headers=["time (s)", "app", "action", "server", "replica",
                     "replicas after"],
        )
        for event in self.allocations:
            table.add_row(
                f"{event.get('timestamp', 0.0):.1f}",
                event.get("app", "?"),
                event.get("action", "?"),
                event.get("server", "?"),
                event.get("replica", "?"),
                event.get("replica_count", "?"),
            )
        return table.render()


    def _render_quality(self) -> str:
        # Only rendered when quality records are present (zoo exports);
        # telemetry goldens without them stay byte-identical.
        if not self.quality:
            return ""
        table = Table(
            title="Detection quality vs injected ground truth",
            headers=["scenario", "precision", "recall", "F1", "tp", "fp",
                     "fn"],
        )
        for record in self.quality:
            table.add_row(
                record.get("scenario", "?"),
                f"{record.get('precision', 0.0):.3f}",
                f"{record.get('recall', 0.0):.3f}",
                f"{record.get('f1', 0.0):.3f}",
                str(record.get("true_positives", "?")),
                str(record.get("false_positives", "?")),
                str(record.get("false_negatives", "?")),
            )
        return table.render()


    def _render_forecasts(self) -> str:
        # Only rendered when forecast records are present (predictive-mode
        # exports); telemetry goldens without them stay byte-identical.
        if not self.forecasts:
            return ""
        table = Table(
            title="Forecast decisions (predictive SLA enforcement)",
            headers=["interval", "app", "predicted", "threshold",
                     "confidence", "decision", "outcome"],
        )
        for record in self.forecasts:
            table.add_row(
                str(record.get("interval", "?")),
                record.get("app", "?"),
                f"{record.get('predicted_latency', 0.0):.3f}",
                f"{record.get('threshold', 0.0):.3f}",
                f"{record.get('confidence', 0.0):.2f}",
                record.get("decision", "?"),
                record.get("outcome", "?"),
            )
        acted = sum(1 for r in self.forecasts if r.get("acted"))
        hits = sum(1 for r in self.forecasts if r.get("outcome") == "hit")
        false_alarms = sum(
            1 for r in self.forecasts if r.get("outcome") == "false_alarm"
        )
        rendered = table.render()
        rendered += (
            f"\n\nActed ahead {acted}× — {hits} hits, "
            f"{false_alarms} false alarms"
        )
        return rendered


def summarize_telemetry(lines: Iterable[str]) -> TelemetrySummary:
    """Parse JSONL telemetry lines into a queryable summary."""
    return TelemetrySummary.from_lines(lines)
