"""Sim-clock-aware span tracing for the retuning pipeline.

A :class:`Span` is a named, attributed slice of work; spans nest through a
stack the :class:`Tracer` maintains, so instrumented callees land under
whatever span their caller opened (``controller.interval`` →
``analyzer.drain`` / ``diagnosis.run`` → ``mrc.recompute``).

Timestamps come from the *simulated* clock, never the wall clock — much of
the control loop runs at an interval boundary where simulated time stands
still, so spans additionally carry a deterministic **cost** in work units
(trace accesses analysed, records drained, actions applied).  Both are
reproducible run-to-run, which is what makes the trace a regression-testable
artefact rather than a profile.
"""

from __future__ import annotations

__all__ = ["Span", "Tracer", "NullTracer", "NULL_TRACER"]


class Span:
    """One timed, attributed unit of pipeline work (a context manager)."""

    __slots__ = ("tracer", "name", "span_id", "parent_id", "start", "end",
                 "attrs", "cost")

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        span_id: int,
        parent_id: int | None,
        start: float,
        attrs: dict | None = None,
    ) -> None:
        self.tracer = tracer
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = start
        self.end: float | None = None
        self.attrs: dict[str, object] = dict(attrs) if attrs else {}
        self.cost = 0.0

    @property
    def duration(self) -> float:
        """Simulated seconds covered; 0.0 while the span is still open."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    @property
    def finished(self) -> bool:
        return self.end is not None

    def set_attr(self, key: str, value: object) -> None:
        self.attrs[key] = value

    def add_cost(self, units: float) -> None:
        """Accumulate deterministic work units (never wall time)."""
        if units < 0:
            raise ValueError(f"span cost cannot decrease: {units}")
        self.cost += units

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self.tracer._finish(self)
        return False  # never swallow the exception

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"end={self.end}" if self.finished else "open"
        return f"Span({self.name!r}, id={self.span_id}, {state})"


class Tracer:
    """Produces nested spans stamped with simulated time.

    ``clock`` is anything with a ``now`` attribute (a
    :class:`~repro.sim.clock.SimClock`); without one, spans are stamped 0.0
    and only their costs carry information.  Span ids are assigned
    sequentially and spans are recorded in *completion* order, so the
    export is deterministic whenever the simulation is.
    """

    enabled = True

    def __init__(self, clock=None) -> None:
        self._clock = clock
        self._stack: list[Span] = []
        self._finished: list[Span] = []
        self._next_id = 1

    def bind_clock(self, clock) -> None:
        """Late-bind the simulation clock (harnesses create it last)."""
        self._clock = clock

    @property
    def now(self) -> float:
        return self._clock.now if self._clock is not None else 0.0

    def span(
        self,
        name: str,
        attrs: dict | None = None,
        start: float | None = None,
    ) -> Span:
        """Open a span under the current one; use as a context manager.

        ``start`` overrides the clock reading — the controller uses it to
        stretch ``controller.interval`` back over the measurement interval
        it is closing (all its work happens at the boundary instant).
        """
        parent = self._stack[-1].span_id if self._stack else None
        span = Span(
            tracer=self,
            name=name,
            span_id=self._next_id,
            parent_id=parent,
            start=self.now if start is None else float(start),
            attrs=attrs,
        )
        self._next_id += 1
        self._stack.append(span)
        return span

    def _finish(self, span: Span) -> None:
        if not self._stack or self._stack[-1] is not span:
            raise RuntimeError(
                f"span {span.name!r} closed out of LIFO order "
                f"(open stack: {[s.name for s in self._stack]})"
            )
        self._stack.pop()
        span.end = max(self.now, span.start)
        self._finished.append(span)

    @property
    def current_span(self) -> Span | None:
        return self._stack[-1] if self._stack else None

    def add_cost(self, units: float) -> None:
        """Charge work units to the innermost open span, if any."""
        if self._stack:
            self._stack[-1].add_cost(units)

    def set_attr(self, key: str, value: object) -> None:
        """Set an attribute on the innermost open span, if any."""
        if self._stack:
            self._stack[-1].set_attr(key, value)

    def finished_spans(self) -> list[Span]:
        """Completed spans in completion order (children before parents)."""
        return list(self._finished)

    @property
    def open_depth(self) -> int:
        return len(self._stack)

    def reset(self) -> None:
        self._stack.clear()
        self._finished.clear()
        self._next_id = 1


class _NullSpan(Span):
    """A reusable, stateless stand-in for disabled tracing."""

    __slots__ = ()

    def set_attr(self, key: str, value: object) -> None:
        pass

    def add_cost(self, units: float) -> None:
        pass

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


class NullTracer(Tracer):
    """The zero-overhead default: every span is the same no-op object."""

    enabled = False

    def __init__(self) -> None:
        super().__init__()
        self._null_span = _NullSpan(
            tracer=self, name="null", span_id=0, parent_id=None, start=0.0
        )

    def span(
        self,
        name: str,
        attrs: dict | None = None,
        start: float | None = None,
    ) -> Span:
        return self._null_span

    def add_cost(self, units: float) -> None:
        pass

    def set_attr(self, key: str, value: object) -> None:
        pass

    def finished_spans(self) -> list[Span]:
        return []


NULL_TRACER = NullTracer()
"""Shared no-op tracer; safe to use as a default everywhere."""
