"""Observability substrate: metrics registry + span tracing.

The paper's contribution is instrumentation-driven control, and this package
turns the reproduction's *own* control loop into an observable system: a
:class:`MetricRegistry` of counters/gauges/histograms keyed by name + labels,
and a sim-clock-aware :class:`Tracer` producing nested spans across the
retuning pipeline (``controller.interval`` → ``analyzer.drain`` →
``diagnosis.run`` → ``mrc.recompute`` → ``actions.apply``).

Design constraints:

* **zero overhead when disabled** — every instrumented component defaults to
  :data:`NULL_OBS`, whose registry and tracer are shared no-op singletons, so
  the hot paths never branch on an "is telemetry on?" flag;
* **deterministic** — spans are stamped with *simulated* time and carry
  deterministic work-unit costs; no wall-clock value ever reaches the
  telemetry, so two identically-seeded runs export byte-identical JSONL and
  telemetry itself becomes a regression-testable artefact.
"""

from .registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    NULL_REGISTRY,
    NullRegistry,
)
from .tracer import NULL_TRACER, NullTracer, Span, Tracer
from .provider import NULL_OBS, Observability
from .export import telemetry_lines, telemetry_records, write_telemetry

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "NULL_OBS",
    "NULL_REGISTRY",
    "NULL_TRACER",
    "NullRegistry",
    "NullTracer",
    "Observability",
    "Span",
    "Tracer",
    "telemetry_lines",
    "telemetry_records",
    "write_telemetry",
]
