"""JSONL serialisation of telemetry: spans first, then metric snapshots.

One line per record, three record types:

* ``{"record": "meta", "version": 1, ...}`` — one header line describing
  the run (scenario name, seed, intervals; never a wall-clock value);
* ``{"record": "span", "id", "parent", "name", "start", "end", "cost",
  "attrs"}`` — one per finished span, in completion order;
* ``{"record": "metric", "type", "name", "labels", ...}`` — one per
  instrument, sorted by name + labels; histograms additionally carry
  ``bounds``/``bucket_counts``/``count``/``sum``/``min``/``max``.

Keys are sorted and separators fixed, so two identically-seeded runs
produce **byte-identical** files — the determinism regression suite hashes
exactly this output.
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = [
    "SCHEMA_VERSION",
    "telemetry_records",
    "telemetry_lines",
    "write_telemetry",
]

SCHEMA_VERSION = 1


def _clean(value):
    """Restrict attribute values to JSON scalars (stringify the rest)."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_clean(item) for item in value]
    return str(value)


def telemetry_records(observability, meta: dict | None = None) -> list[dict]:
    """Everything one run produced, as JSON-ready dicts."""
    records: list[dict] = [
        {"record": "meta", "version": SCHEMA_VERSION, **(meta or {})}
    ]
    for span in observability.tracer.finished_spans():
        records.append(
            {
                "record": "span",
                "id": span.span_id,
                "parent": span.parent_id,
                "name": span.name,
                "start": span.start,
                "end": span.end,
                "cost": span.cost,
                "attrs": {key: _clean(v) for key, v in sorted(span.attrs.items())},
            }
        )
    for snapshot in observability.registry.snapshot():
        records.append({"record": "metric", **snapshot})
    return records


def telemetry_lines(observability, meta: dict | None = None) -> list[str]:
    """The JSONL lines (no trailing newlines), deterministically ordered."""
    return [
        json.dumps(record, sort_keys=True, separators=(",", ":"))
        for record in telemetry_records(observability, meta)
    ]


def write_telemetry(
    path: str | Path, observability, meta: dict | None = None
) -> Path:
    """Write one run's telemetry as JSONL; returns the path."""
    path = Path(path)
    lines = telemetry_lines(observability, meta)
    path.write_text("\n".join(lines) + "\n")
    return path
