#!/usr/bin/env python3
"""Xen dom0 I/O contention: VMs isolate memory and CPU, but not the disk.

The paper's §5.5 scenario: two independent RUBiS instances run in two VM
domains on one Xen host.  Every guest block request is serviced by dom0,
so when both instances are active the shared channel saturates — latency
triples, throughput collapses — even though neither VM is short of CPU or
memory.

The §3.3.3 heuristic removes query contexts from the host in decreasing
order of I/O rate.  SearchItemsByRegion alone contributes ~87 % of the I/O,
so moving that single class restores near-baseline performance; migrating
a whole VM would have been wild overkill.

Run:  python examples/virtualized_io_contention.py
"""

from repro.experiments.io_contention import IOContentionConfig, run_io_contention


def main() -> None:
    print("Running the two-domain Xen scenario (RUBiS x 2)...\n")
    result = run_io_contention(IOContentionConfig(clients_per_instance=150))

    print(result.to_table().render())

    print("\nPaper reference (Table 3):")
    print("  RUBiS / IDLE      1.5 s / 97 WIPS")
    print("  RUBiS / RUBiS     4.8 s / 30 WIPS")
    print("  RUBiS / RUBiS-1   1.5 s / 95 WIPS")

    print("\nI/O attribution:")
    print(
        f"  heaviest context: {result.heaviest_io_context} with "
        f"{result.heaviest_io_share:.0%} of the instance's I/O (paper: 87%)"
    )

    print("\nReactions:")
    for action in result.actions:
        print(f"  {action.kind.value} [{action.app}]: {action.reason}")


if __name__ == "__main__":
    main()
