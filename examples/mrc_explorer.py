#!/usr/bin/env python3
"""Miss-ratio-curve explorer: Mattson's stack algorithm on query traces.

Generates page traces for the three load-bearing query classes, runs them
through the one-pass stack analysis, and renders ASCII miss-ratio curves
with the paper's two parameters (total / acceptable memory) marked.

Run:  python examples/mrc_explorer.py
"""

from repro.experiments.mrc_curves import (
    run_fig5_bestseller,
    run_fig5_bestseller_degraded,
    run_fig6_search_items_by_region,
)


def ascii_curve(result, width=60, height=12):
    """Plot (memory, miss ratio) samples as a rough ASCII chart."""
    samples = result.samples
    max_size = max(size for size, _ in samples)
    grid = [[" "] * width for _ in range(height)]
    for size, ratio in samples:
        x = min(int(size / max_size * (width - 1)), width - 1)
        y = min(int((1.0 - ratio) * (height - 1)), height - 1)
        grid[height - 1 - y][x] = "*"
    lines = [f"{result.context}  (x: 0..{max_size} pages, y: miss ratio 1->0)"]
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width)
    return "\n".join(lines)


def describe(result, paper_acceptable):
    p = result.params
    print(ascii_curve(result))
    print(
        f"  total memory: {p.total_memory} pages   "
        f"acceptable: {p.acceptable_memory} pages (paper: {paper_acceptable})"
    )
    print(
        f"  ideal miss ratio: {p.ideal_miss_ratio:.3f}   "
        f"acceptable miss ratio: {p.acceptable_miss_ratio:.3f}"
    )
    print()


def main() -> None:
    print("BestSeller, indexed plan (paper Figure 5):\n")
    describe(run_fig5_bestseller(executions=400), paper_acceptable=6982)

    print("BestSeller after dropping O_DATE (flatter, longer tail):\n")
    describe(run_fig5_bestseller_degraded(executions=80), paper_acceptable=3695)

    print("RUBiS SearchItemsByRegion (paper Figure 6):\n")
    describe(run_fig6_search_items_by_region(executions=200), paper_acceptable=7906)

    print(
        "The §5.4 incompatibility: BestSeller (~7000 pages) plus\n"
        "SearchItemsByRegion (~7700 pages) cannot share an 8192-page pool."
    )


if __name__ == "__main__":
    main()
