#!/usr/bin/env python3
"""Quickstart: a replicated TPC-W cluster with the selective-retuning loop.

Builds the synthetic TPC-W workload, wires a three-server cluster behind a
scheduler, drives a closed-loop client population for two simulated
minutes, and prints the per-interval SLA accounting plus a per-query-class
metric snapshot — the raw material the paper's outlier detector consumes.

Run:  python examples/quickstart.py
"""

from repro import ClusterHarness, Metric, build_tpcw
from repro.analysis.report import Table


def main() -> None:
    workload = build_tpcw(seed=7)
    print(f"Workload: {workload.app} with {len(workload.classes())} query classes")
    print(f"Shopping mix write fraction: {workload.write_fraction:.0%}")
    print(f"Database size: {workload.schema.total_pages:,} pages of 16 KiB\n")

    harness = ClusterHarness.single_app(
        workload,
        servers=3,  # the shared pool the resource manager can draw from
        clients=25,  # emulated browsers in a closed think-time loop
        sla_latency=1.0,  # the paper's SLA: mean query latency <= 1 s
    )

    result = harness.run(intervals=12)  # 12 x 10 s measurement intervals

    timeline = Table(
        title="Per-interval SLA accounting (tpcw)",
        headers=["interval", "mean latency (s)", "throughput (q/s)", "SLA met"],
    )
    for report in result.timeline(workload.app):
        timeline.add_row(
            report.interval_index,
            f"{report.mean_latency:.3f}",
            f"{report.throughput:.1f}",
            report.sla_met,
        )
    print(timeline.render())

    # Peek at the per-query-class metrics the detection pipeline monitors.
    replica = harness.replicas_of(workload.app)[0]
    analyzer = harness.controller.analyzer_of(replica)
    snapshot = Table(
        title="\nPer-query-class metrics (last interval, first replica)",
        headers=["class", "latency (s)", "misses", "page accesses"],
    )
    for key, vector in sorted(analyzer.current_vectors(workload.app).items()):
        snapshot.add_row(
            key.split("/", 1)[1],
            f"{vector.get(Metric.LATENCY):.3f}",
            int(vector.get(Metric.MISSES)),
            int(vector.get(Metric.PAGE_ACCESSES)),
        )
    print(snapshot.render())

    pool = replica.engine.pool
    print(f"\nBuffer pool: {replica.engine.pool_pages} pages, "
          f"hit ratio {pool.stats.hit_ratio:.1%}")


if __name__ == "__main__":
    main()
