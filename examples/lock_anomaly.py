#!/usr/bin/env python3
"""The paper's future work, running: lock-contention anomaly detection.

The paper's conclusion names "invoking a query with the wrong arguments,
lock contention or deadlock situations" as the next anomalies outlier
detection should narrow down.  This example injects exactly that fault —
an AdminUpdate that lost its WHERE clause, scanning the item table and
X-locking every item row group for seconds at a time — and shows the
pipeline attributing the SLA violation to lock waits and naming the
aggressor class via the waits-for graph.

Run:  python examples/lock_anomaly.py
"""

from repro.experiments.lock_contention import (
    LockContentionConfig,
    run_lock_contention,
)


def main() -> None:
    print("Running the wrong-arguments scenario (TPC-W, 50 clients)...\n")
    result = run_lock_contention(LockContentionConfig())

    print("1. Stable state")
    print(f"   mean latency: {result.latency_before:.2f} s; "
          f"lock waits are {result.baseline_lock_wait_share:.1%} of app time")

    print("\n2. AdminUpdate loses its WHERE clause")
    print("   every execution now scans the item table and X-locks all of it")
    print(f"   mean latency: {result.latency_during:.2f} s (SLA: 1 s)")
    print(f"   lock waits now {result.lock_wait_share:.1%} of app time — "
          "yet the victims' buffer-pool counters look ordinary")

    print("\n3. Diagnosis")
    if result.reports:
        print(f"   {result.reports[0].reason}")
    print(f"\n   => aggressor: {result.reported_aggressor}")
    print(
        "   (no resource to retune: writes run on every replica under "
        "read-one-write-all,\n    so the pipeline reports the offending "
        "class for the operator to fix)"
    )


if __name__ == "__main__":
    main()
