#!/usr/bin/env python3
"""Reactive provisioning under a sinusoid load (the paper's Figure 3).

TPC-W's client population follows a noisy sine wave.  When CPU saturates,
the controller provisions replicas from the pool and load-balances every
query class across them; when the wave recedes, replicas are released.
The machine-allocation curve ends up tracking the load.

Run:  python examples/capacity_follows_load.py
"""

from repro.experiments.cpu_saturation import CPUSaturationConfig, run_cpu_saturation


def _spark(values, levels="  .:-=+*#%@"):
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1
    return "".join(
        levels[min(int((v - lo) / span * (len(levels) - 1)), len(levels) - 1)]
        for v in values
    )


def main() -> None:
    print("Running the sine-load scenario (TPC-W)...\n")
    result = run_cpu_saturation(CPUSaturationConfig())

    loads = [c for _, c in result.load_series]
    allocations = [a for _, a in result.allocation_series]
    latencies = [l for _, l in result.latency_series]

    print("Figure 3(a) clients:  ", _spark(loads))
    print("Figure 3(b) replicas: ", _spark(allocations))
    print("Figure 3(c) latency:  ", _spark(latencies))
    print()
    print(f"client population: {min(loads)}..{max(loads)}")
    print(f"replica allocation: {min(allocations)}..{max(allocations)} "
          f"(peak {result.peak_replicas})")
    violations = sum(1 for l in latencies if l > result.sla_latency)
    print(f"SLA violations: {violations} of {len(latencies)} intervals; "
          f"{result.violations_before_recovery} before the first recovery")

    print("\ninterval-by-interval:")
    print(f"{'t (s)':>8} {'clients':>8} {'replicas':>9} {'latency':>9}")
    for (t, c), (_, a), (_, l) in zip(
        result.load_series, result.allocation_series, result.latency_series
    ):
        marker = "  <-- SLA violated" if l > result.sla_latency else ""
        print(f"{t:8.0f} {c:8d} {a:9d} {l:9.2f}{marker}")


if __name__ == "__main__":
    main()
