#!/usr/bin/env python3
"""Server consolidation gone wrong: two applications, one buffer pool.

The paper's §5.4 scenario: TPC-W runs comfortably inside one database
engine until a RUBiS workload is consolidated into the *same* engine.
RUBiS's SearchItemsByRegion needs nearly the whole 8192-page buffer pool by
itself, so TPC-W's working set is evicted, its latency explodes and its
throughput halves.

The fine-grained pipeline exonerates TPC-W's own classes (their MRCs are
unchanged), blames the newly scheduled RUBiS class, finds no feasible
quota, and reschedules just that one query class onto a spare replica —
after which both applications coexist.

Run:  python examples/consolidation_contention.py
"""

from repro.experiments.memory_contention import (
    MemoryContentionConfig,
    run_memory_contention,
)


def main() -> None:
    print("Running the consolidation scenario (TPC-W + RUBiS, one engine)...\n")
    result = run_memory_contention(MemoryContentionConfig())

    print(result.to_table().render())

    print("\nPaper reference (Table 2):")
    print("  TPC-W / IDLE      0.54 s /  8.73 WIPS")
    print("  TPC-W / RUBiS     5.42 s /  4.29 WIPS")
    print("  TPC-W / RUBiS-1   1.27 s /  6.44 WIPS")

    print("\nDiagnosis:")
    for action in result.actions:
        print(f"  {action.kind.value}: {action.reason}")
    if result.rescheduled_context:
        print(
            f"\nThe class moved off the shared engine: {result.rescheduled_context}"
        )
        print(
            "One query class moved — not a whole application, not a whole VM."
        )

    baseline, contended, recovered = result.rows
    print(
        f"\nLatency: {baseline.latency:.2f} s -> {contended.latency:.2f} s "
        f"-> {recovered.latency:.2f} s"
    )
    print(
        f"Throughput: {baseline.throughput:.1f} -> {contended.throughput:.1f} "
        f"-> {recovered.throughput:.1f} WIPS"
    )


if __name__ == "__main__":
    main()
