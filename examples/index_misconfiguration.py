#!/usr/bin/env python3
"""Index mis-configuration: the paper's §5.3 scenario, step by step.

TPC-W runs alone until the system reaches stable state.  The ``O_DATE``
index — used only by the BestSeller query — is then dropped, degenerating
BestSeller's plan into read-ahead-heavy partial scans that flood the shared
buffer pool and violate the 1 s SLA.

The script walks the full selective-retuning pipeline and narrates every
stage: the Figure 4 metric ratios, the outlier contexts, the recomputed
miss-ratio curve, and the quota the system enforces.

Run:  python examples/index_misconfiguration.py
"""

from repro.experiments.index_drop import IndexDropConfig, run_index_drop


def main() -> None:
    print("Running the index-drop scenario (TPC-W, 60 clients)...\n")
    result = run_index_drop(IndexDropConfig(clients=60))

    print("1. Stable state")
    print(f"   baseline mean latency: {result.latency_before:.2f} s (SLA: 1 s)")
    if result.mrc_before:
        print(
            "   BestSeller MRC: acceptable memory "
            f"{result.mrc_before.acceptable_memory} pages, "
            f"ideal miss ratio {result.mrc_before.ideal_miss_ratio:.2f}"
        )

    print("\n2. O_DATE dropped -> SLA violation")
    print(f"   peak mean latency: {result.latency_violation:.2f} s")

    print("\n3. Outlier context detection (Figure 4)")
    for metric in ("latency", "misses", "readaheads"):
        panel = result.ratios.get(metric, {})
        top = sorted(panel.items(), key=lambda kv: -kv[1])[:3]
        formatted = ", ".join(f"q{qid}: {ratio:.1f}x" for qid, ratio in top)
        print(f"   {metric:10s} top ratios: {formatted}")
    print(f"   outlier contexts: {result.outlier_contexts}")

    print("\n4. MRC recomputation for the problem class")
    if result.mrc_after:
        print(
            "   degraded BestSeller MRC: acceptable memory "
            f"{result.mrc_after.acceptable_memory} pages, "
            f"ideal miss ratio {result.mrc_after.ideal_miss_ratio:.2f} "
            "(a much flatter curve: caching no longer absorbs the plan)"
        )

    print("\n5. Reaction")
    for action in result.actions:
        quotas = action.quota_map()
        if quotas:
            for context, pages in quotas.items():
                print(
                    f"   {action.kind.value}: {context} pinned to a "
                    f"{pages}-page buffer-pool partition (paper: 3695)"
                )
        else:
            print(f"   {action.kind.value}: {action.reason}")

    print("\n6. Outcome")
    print(f"   mean latency after retuning: {result.latency_after:.2f} s")
    improvement = result.latency_violation / max(result.latency_after, 1e-9)
    print(f"   improvement over the violation peak: {improvement:.1f}x")


if __name__ == "__main__":
    main()
