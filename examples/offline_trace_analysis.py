#!/usr/bin/env python3
"""Off-line trace analysis, the way the paper's prototype does it.

"Other aspects of our prototype are automated only through off-line trace
analysis ... These include determination of MRC curves for query classes."
This example runs that workflow end to end:

1. drive a live TPC-W cluster and *capture* every query class's recent
   page-access window to a compressed trace archive,
2. reload the archive in a separate "analysis" step,
3. compute exact and SHARDS-sampled miss-ratio curves per class, and
4. export the derived memory parameters as JSON.

Run:  python examples/offline_trace_analysis.py
"""

import tempfile
import time
from pathlib import Path

from repro import ClusterHarness, build_tpcw
from repro.analysis.export import export_result
from repro.analysis.tracefile import load_traces, save_traces, trace_summary
from repro.core.mrc import MissRatioCurve
from repro.core.mrc_sampling import sampled_mrc


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-traces-"))
    archive = workdir / "tpcw-windows.npz"

    # --- 1. capture ----------------------------------------------------- #
    print("driving a TPC-W cluster for 8 intervals...")
    workload = build_tpcw(seed=7)
    harness = ClusterHarness.single_app(workload, servers=2, clients=30)
    harness.run(intervals=8)
    engine = harness.replicas_of(workload.app)[0].engine
    windows = {
        key: engine.log.window_for(key).snapshot()
        for key in engine.log.context_keys()
        if engine.log.has_window(key)
    }
    save_traces(archive, windows)
    print(f"captured {len(windows)} class windows -> {archive}")

    # --- 2. reload ------------------------------------------------------ #
    traces = load_traces(archive)
    for key, info in sorted(trace_summary(traces).items()):
        print(f"  {key:28s} {info['accesses']:7d} accesses, "
              f"{info['distinct_pages']:6d} distinct pages")

    # --- 3. analyse ------------------------------------------------------ #
    print("\nper-class MRC parameters (pool = 8192 pages):")
    parameters = {}
    for key, trace in sorted(traces.items()):
        if len(trace) < 500:
            continue
        t0 = time.perf_counter()
        exact = MissRatioCurve.from_trace(trace).parameters(8192)
        exact_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        approx_curve, stats = sampled_mrc(trace, rate=0.2, seed=1)
        approx = approx_curve.parameters(8192)
        approx_s = time.perf_counter() - t0
        parameters[key] = exact
        print(
            f"  {key:28s} acceptable {exact.acceptable_memory:5d} pages "
            f"(exact, {exact_s*1e3:5.0f} ms) ~ {approx.acceptable_memory:5d} "
            f"(sampled 20%, {approx_s*1e3:4.0f} ms)"
        )

    # --- 4. export ------------------------------------------------------- #
    out = export_result(workdir / "mrc-parameters.json", parameters)
    print(f"\nexported parameters -> {out}")
    total = sum(p.acceptable_memory for p in parameters.values())
    print(f"sum of acceptable memory across classes: {total} pages "
          f"({'fits' if total < 8192 else 'exceeds'} the 8192-page pool)")


if __name__ == "__main__":
    main()
